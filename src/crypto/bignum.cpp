#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/hex.hpp"

namespace opcua_study {

namespace {

using DoubleLimb = unsigned __int128;
using SignedDoubleLimb = __int128;

// Schoolbook→Karatsuba crossover (tuned on the scratch-buffer recursion
// below; see bench/crypto_throughput.cpp for the measurement harness).
std::size_t g_karatsuba_threshold = 24;

// Below this divisor size (limbs) Burnikel-Ziegler recursion bottoms out
// into Knuth-D; also the minimum quotient size worth the recursion.
constexpr std::size_t kBurnikelThresholdLimbs = 32;

// Montgomery contexts use the interleaved CIOS multiply below this modulus
// size and a Karatsuba product + separated REDC above it. CIOS measures
// faster through at least 4096-bit moduli (the allocation-free inner loop
// beats the asymptotics), so only the huge-operand uses flip over.
constexpr std::size_t kMontSeparatedLimbs = 96;

}  // namespace

std::size_t Bignum::karatsuba_threshold() { return g_karatsuba_threshold; }

void Bignum::set_karatsuba_threshold(std::size_t limbs) {
  // Below 4 limbs the (a0+a1) sums stop shrinking and the recursion would
  // not terminate.
  g_karatsuba_threshold = std::max<std::size_t>(4, limbs);
}

Bignum::Bignum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void Bignum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::slice_limbs(std::size_t from, std::size_t count) const {
  Bignum out;
  if (from >= limbs_.size() || count == 0) return out;
  const std::size_t end = std::min(limbs_.size(), from + count);
  out.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(from),
                    limbs_.begin() + static_cast<std::ptrdiff_t>(end));
  out.trim();
  return out;
}

Bignum Bignum::from_bytes_be(std::span<const std::uint8_t> bytes) {
  Bignum out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 64] |= static_cast<std::uint64_t>(bytes[i]) << (bit_pos % 64);
  }
  out.trim();
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes_be(opcua_study::from_hex(padded));
}

Bytes Bignum::to_bytes_be(std::size_t min_len) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(nbytes, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::size_t bit_pos = i * 8;
    out[len - 1 - i] = static_cast<std::uint8_t>(limbs_[bit_pos / 64] >> (bit_pos % 64));
  }
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  auto bytes = to_bytes_be();
  std::string h = opcua_study::to_hex(bytes);
  // Strip one leading zero nibble if present.
  if (h.size() > 1 && h[0] == '0') h.erase(h.begin());
  return h;
}

std::size_t Bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  return limbs_.size() * 64 - static_cast<std::size_t>(std::countl_zero(limbs_.back()));
}

bool Bignum::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

void Bignum::set_bit(std::size_t i) {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= std::uint64_t{1} << (i % 64);
}

int Bignum::compare(const Bignum& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::operator+(const Bignum& other) const {
  Bignum out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    DoubleLimb sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  out.limbs_[n] = static_cast<std::uint64_t>(carry);
  out.trim();
  return out;
}

Bignum Bignum::operator-(const Bignum& other) const {
  if (*this < other) throw std::domain_error("Bignum underflow");
  Bignum out;
  out.limbs_.resize(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    SignedDoubleLimb diff = static_cast<SignedDoubleLimb>(limbs_[i]) - borrow -
                            (i < other.limbs_.size() ? other.limbs_[i] : 0);
    if (diff < 0) {
      diff += static_cast<SignedDoubleLimb>(1) << 64;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint64_t>(diff);
  }
  out.trim();
  return out;
}

namespace {

// ---- raw-limb multiplication kernels --------------------------------------
// All little-endian, explicit lengths, no trimming. The Karatsuba recursion
// works entirely inside one caller-allocated scratch arena: the Bignum
// wrappers allocate exactly twice per product (result + scratch), which is
// what makes the subquadratic path actually pay off at RSA/tree sizes.

void mul_basecase(const std::uint64_t* a, std::size_t an, const std::uint64_t* b, std::size_t bn,
                  std::uint64_t* out) {
  std::fill(out, out + an + bn, 0);
  for (std::size_t i = 0; i < an; ++i) {
    DoubleLimb carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < bn; ++j) {
      const DoubleLimb cur = out[i + j] + static_cast<DoubleLimb>(ai) * b[j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    // Rows write disjoint trailing slots, so the final carry lands in a
    // fresh zero limb — no propagation loop needed.
    out[i + bn] = static_cast<std::uint64_t>(carry);
  }
}

void sqr_basecase(const std::uint64_t* a, std::size_t n, std::uint64_t* out) {
  std::fill(out, out + 2 * n, 0);
  // Off-diagonal products once...
  for (std::size_t i = 0; i < n; ++i) {
    DoubleLimb carry = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const DoubleLimb cur = out[i + j] + static_cast<DoubleLimb>(a[i]) * a[j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    out[i + n] = static_cast<std::uint64_t>(carry);
  }
  // ...doubled...
  for (std::size_t k = 2 * n; k-- > 1;) {
    out[k] = (out[k] << 1) | (out[k - 1] >> 63);
  }
  out[0] <<= 1;
  // ...plus the diagonal.
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    DoubleLimb cur = out[2 * i] + static_cast<DoubleLimb>(a[i]) * a[i] + carry;
    out[2 * i] = static_cast<std::uint64_t>(cur);
    cur = out[2 * i + 1] + (cur >> 64);
    out[2 * i + 1] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
}

/// acc[0..len) += x[0..xn); the caller guarantees the sum fits in len limbs.
void add_into(std::uint64_t* acc, std::size_t len, const std::uint64_t* x, std::size_t xn) {
  DoubleLimb carry = 0;
  for (std::size_t j = 0; j < xn; ++j) {
    const DoubleLimb cur = static_cast<DoubleLimb>(acc[j]) + x[j] + carry;
    acc[j] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  for (std::size_t j = xn; carry && j < len; ++j) {
    const DoubleLimb cur = static_cast<DoubleLimb>(acc[j]) + carry;
    acc[j] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
}

/// acc[0..len) -= x[0..xn); the caller guarantees acc >= x.
void sub_into(std::uint64_t* acc, std::size_t len, const std::uint64_t* x, std::size_t xn) {
  std::uint64_t borrow = 0;
  for (std::size_t j = 0; j < xn; ++j) {
    const SignedDoubleLimb diff = static_cast<SignedDoubleLimb>(acc[j]) - x[j] - borrow;
    acc[j] = static_cast<std::uint64_t>(diff);
    borrow = diff < 0 ? 1 : 0;
  }
  for (std::size_t j = xn; borrow && j < len; ++j) {
    const SignedDoubleLimb diff = static_cast<SignedDoubleLimb>(acc[j]) - borrow;
    acc[j] = static_cast<std::uint64_t>(diff);
    borrow = diff < 0 ? 1 : 0;
  }
}

/// out[0..an+1) = a[0..an) + b[0..bn), an >= bn; returns the written length.
std::size_t add_full(const std::uint64_t* a, std::size_t an, const std::uint64_t* b,
                     std::size_t bn, std::uint64_t* out) {
  DoubleLimb carry = 0;
  for (std::size_t j = 0; j < an; ++j) {
    const DoubleLimb cur = static_cast<DoubleLimb>(a[j]) + (j < bn ? b[j] : 0) + carry;
    out[j] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  if (carry) {
    out[an] = static_cast<std::uint64_t>(carry);
    return an + 1;
  }
  return an;
}

std::size_t trimmed_len(const std::uint64_t* p, std::size_t len) {
  while (len && p[len - 1] == 0) --len;
  return len;
}

// out[0..an+bn) = a*b, an >= bn >= 1. scratch must hold >= 4*(an+bn) limbs.
void mul_rec(const std::uint64_t* a, std::size_t an, const std::uint64_t* b, std::size_t bn,
             std::uint64_t* out, std::uint64_t* scratch) {
  if (bn < g_karatsuba_threshold) {
    mul_basecase(a, an, b, bn, out);
    return;
  }
  if (an > bn) {
    // Unbalanced: chop `a` into bn-sized chunks, each multiplied balanced.
    std::fill(out, out + an + bn, 0);
    for (std::size_t pos = 0; pos < an; pos += bn) {
      const std::size_t cl = std::min(bn, an - pos);
      std::uint64_t* tmp = scratch;
      if (cl >= bn) {
        mul_rec(a + pos, cl, b, bn, tmp, scratch + cl + bn);
      } else {
        mul_rec(b, bn, a + pos, cl, tmp, scratch + cl + bn);
      }
      add_into(out + pos, an + bn - pos, tmp, cl + bn);
    }
    return;
  }
  // Balanced Karatsuba: a = a1·B^h + a0, b = b1·B^h + b0.
  const std::size_t n = an;
  const std::size_t h = n / 2;
  const std::size_t hi = n - h;  // a1/b1 length (h or h+1)
  mul_rec(a, h, b, h, out, scratch);                // z0 -> out[0..2h)
  mul_rec(a + h, hi, b + h, hi, out + 2 * h, scratch);  // z2 -> out[2h..2n)
  std::uint64_t* sa = scratch;
  std::uint64_t* sb = scratch + hi + 1;
  std::uint64_t* m = scratch + 2 * (hi + 1);
  const std::size_t sa_len = add_full(a + h, hi, a, h, sa);
  const std::size_t sb_len = add_full(b + h, hi, b, h, sb);
  std::uint64_t* child = scratch + 2 * (hi + 1) + (sa_len + sb_len);
  if (sa_len >= sb_len) {
    mul_rec(sa, sa_len, sb, sb_len, m, child);
  } else {
    mul_rec(sb, sb_len, sa, sa_len, m, child);
  }
  std::size_t m_len = sa_len + sb_len;
  // m = (a0+a1)(b0+b1) - z0 - z2 == a0·b1 + a1·b0 >= 0.
  sub_into(m, m_len, out, 2 * h);
  sub_into(m, m_len, out + 2 * h, 2 * hi);
  m_len = trimmed_len(m, m_len);
  add_into(out + h, 2 * n - h, m, m_len);
}

// out[0..2n) = a², n >= 1. scratch must hold >= 4*(2n) limbs.
void sqr_rec(const std::uint64_t* a, std::size_t n, std::uint64_t* out, std::uint64_t* scratch) {
  if (n < g_karatsuba_threshold) {
    sqr_basecase(a, n, out);
    return;
  }
  const std::size_t h = n / 2;
  const std::size_t hi = n - h;
  sqr_rec(a, h, out, scratch);                // z0
  sqr_rec(a + h, hi, out + 2 * h, scratch);   // z2
  std::uint64_t* s = scratch;
  std::uint64_t* m = scratch + (hi + 1);
  const std::size_t s_len = add_full(a + h, hi, a, h, s);
  sqr_rec(s, s_len, m, scratch + (hi + 1) + 2 * s_len);
  std::size_t m_len = 2 * s_len;
  sub_into(m, m_len, out, 2 * h);
  sub_into(m, m_len, out + 2 * h, 2 * hi);
  m_len = trimmed_len(m, m_len);
  add_into(out + h, 2 * n - h, m, m_len);
}

}  // namespace

Bignum Bignum::operator*(const Bignum& other) const {
  if (is_zero() || other.is_zero()) return Bignum{};
  const std::size_t an = limbs_.size();
  const std::size_t bn = other.limbs_.size();
  Bignum out;
  out.limbs_.resize(an + bn);
  if (std::min(an, bn) < g_karatsuba_threshold) {
    if (an >= bn) {
      mul_basecase(limbs_.data(), an, other.limbs_.data(), bn, out.limbs_.data());
    } else {
      mul_basecase(other.limbs_.data(), bn, limbs_.data(), an, out.limbs_.data());
    }
  } else {
    // Peak arena usage is ~4(an+bn) + O(log) across the recursion (the
    // chunked path peaks at 5x); validated under ASan in the test suite.
    std::vector<std::uint64_t> scratch(5 * (an + bn) + 1024);
    if (an >= bn) {
      mul_rec(limbs_.data(), an, other.limbs_.data(), bn, out.limbs_.data(), scratch.data());
    } else {
      mul_rec(other.limbs_.data(), bn, limbs_.data(), an, out.limbs_.data(), scratch.data());
    }
  }
  out.trim();
  return out;
}

Bignum Bignum::sqr() const {
  if (is_zero()) return Bignum{};
  const std::size_t n = limbs_.size();
  Bignum out;
  out.limbs_.resize(2 * n);
  if (n < g_karatsuba_threshold) {
    sqr_basecase(limbs_.data(), n, out.limbs_.data());
  } else {
    std::vector<std::uint64_t> scratch(8 * n + 1024);
    sqr_rec(limbs_.data(), n, out.limbs_.data(), scratch.data());
  }
  out.trim();
  return out;
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (is_zero()) return Bignum{};
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift) out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.trim();
  return out;
}

Bignum Bignum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return Bignum{};
  const std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.trim();
  return out;
}

Bignum::DivMod Bignum::divmod_binary(const Bignum& divisor) const {
  // Reference implementation (shift-subtract), kept as a property-test
  // oracle for the Knuth-D and Burnikel-Ziegler fast paths.
  if (divisor.is_zero()) throw std::domain_error("Bignum division by zero");
  if (*this < divisor) return {Bignum{}, *this};
  const std::size_t shift = bit_length() - divisor.bit_length();
  Bignum remainder = *this;
  Bignum quotient;
  Bignum d = divisor << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= d) {
      remainder = remainder - d;
      quotient.set_bit(i);
    }
    d = d >> 1;
  }
  quotient.trim();
  return {quotient, remainder};
}

Bignum::DivMod Bignum::divmod_knuth(const Bignum& divisor) const {
  // Knuth TAOCP vol. 2 Algorithm D (after Hacker's Delight divmnu), base
  // 2^64 with __int128 intermediates.
  if (divisor.is_zero()) throw std::domain_error("Bignum division by zero");
  if (*this < divisor) return {Bignum{}, *this};
  const std::size_t n = divisor.limbs_.size();
  if (n == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    Bignum q;
    q.limbs_.assign(limbs_.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const DoubleLimb cur = (rem << 64) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint64_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, Bignum{static_cast<std::uint64_t>(rem)}};
  }

  const std::size_t m = limbs_.size();
  const int s = std::countl_zero(divisor.limbs_.back());
  // Normalized copies: vn has exactly n limbs with the top bit set.
  std::vector<std::uint64_t> vn(n);
  for (std::size_t i = n; i-- > 0;) {
    std::uint64_t v = divisor.limbs_[i] << s;
    if (s && i > 0) v |= divisor.limbs_[i - 1] >> (64 - s);
    vn[i] = v;
  }
  std::vector<std::uint64_t> un(m + 1, 0);
  un[m] = s ? (limbs_[m - 1] >> (64 - s)) : 0;
  for (std::size_t i = m; i-- > 0;) {
    std::uint64_t v = limbs_[i] << s;
    if (s && i > 0) v |= limbs_[i - 1] >> (64 - s);
    un[i] = v;
  }

  Bignum q;
  q.limbs_.assign(m - n + 1, 0);
  constexpr DoubleLimb kBase = static_cast<DoubleLimb>(1) << 64;
  for (std::size_t j = m - n + 1; j-- > 0;) {
    const DoubleLimb num = (static_cast<DoubleLimb>(un[j + n]) << 64) | un[j + n - 1];
    DoubleLimb qhat = num / vn[n - 1];
    DoubleLimb rhat = num % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply and subtract.
    SignedDoubleLimb k = 0;
    SignedDoubleLimb t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const DoubleLimb p = qhat * vn[i];
      t = static_cast<SignedDoubleLimb>(static_cast<DoubleLimb>(un[i + j])) - k -
          static_cast<SignedDoubleLimb>(static_cast<std::uint64_t>(p));
      un[i + j] = static_cast<std::uint64_t>(t);
      k = static_cast<SignedDoubleLimb>(static_cast<std::uint64_t>(p >> 64)) - (t >> 64);
    }
    t = static_cast<SignedDoubleLimb>(static_cast<DoubleLimb>(un[j + n])) - k;
    un[j + n] = static_cast<std::uint64_t>(t);
    q.limbs_[j] = static_cast<std::uint64_t>(qhat);
    if (t < 0) {
      // Rare add-back step.
      --q.limbs_[j];
      DoubleLimb carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const DoubleLimb sum = static_cast<DoubleLimb>(un[i + j]) + vn[i] + carry;
        un[i + j] = static_cast<std::uint64_t>(sum);
        carry = sum >> 64;
      }
      un[j + n] += static_cast<std::uint64_t>(carry);
    }
  }
  q.trim();
  // Denormalize the remainder (low n limbs of un, shifted right by s).
  Bignum r;
  r.limbs_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = un[i] >> s;
    if (s && i + 1 < n + 1) v |= un[i + 1] << (64 - s);
    r.limbs_[i] = v;
  }
  r.trim();
  return {q, r};
}

// ----------------------------------------------- Burnikel-Ziegler division

// Recursive division (Burnikel & Ziegler, "Fast Recursive Division",
// 1998) built on Karatsuba multiplication: the remainder tree of the §5.3
// batch-GCD reduces megabit parents modulo megabit squares, where Knuth-D's
// quadratic multiply-subtract dominates the whole analysis. The recursion
// trades it for two half-size divisions plus one Karatsuba product.

Bignum::DivMod Bignum::bz_div_2n_by_1n(const Bignum& a, const Bignum& b, std::size_t n) {
  // Preconditions: b has exactly n limbs with the top bit set; a < b·2^(64n).
  if (n % 2 == 1 || n <= kBurnikelThresholdLimbs) return a.divmod_knuth(b);
  const std::size_t h = n / 2;
  const Bignum a_hi = a >> (64 * h);
  const Bignum a_lo = a.slice_limbs(0, h);
  DivMod hi = bz_div_3h_by_2h(a_hi, b, h);
  DivMod lo = bz_div_3h_by_2h((hi.remainder << (64 * h)) + a_lo, b, h);
  return {(hi.quotient << (64 * h)) + lo.quotient, std::move(lo.remainder)};
}

Bignum::DivMod Bignum::bz_div_3h_by_2h(const Bignum& a, const Bignum& b, std::size_t h) {
  // Preconditions: b has 2h limbs with the top bit set; a < b·2^(64h).
  const Bignum b1 = b >> (64 * h);  // h limbs, top bit set
  const Bignum b2 = b.slice_limbs(0, h);
  const Bignum a12 = a >> (64 * h);
  const Bignum a3 = a.slice_limbs(0, h);
  Bignum q, r1;
  if (a >> (64 * 2 * h) < b1) {
    DivMod qr = bz_div_2n_by_1n(a12, b1, h);
    q = std::move(qr.quotient);
    r1 = std::move(qr.remainder);
  } else {
    // Quotient estimate saturates at 2^(64h) - 1; a12 >= b1·2^(64h) here,
    // so r1 = a12 - (2^(64h) - 1)·b1 = a12 - b1·2^(64h) + b1 is exact.
    q.limbs_.assign(h, ~std::uint64_t{0});
    r1 = a12 - (b1 << (64 * h)) + b1;
  }
  const Bignum d = q * b2;
  Bignum rhat = (r1 << (64 * h)) + a3;
  while (rhat < d) {  // at most twice (B-Z Lemma 2)
    q = q - Bignum{1};
    rhat = rhat + b;
  }
  return {std::move(q), rhat - d};
}

Bignum::DivMod Bignum::divmod_burnikel(const Bignum& divisor) const {
  const std::size_t n0 = divisor.limbs_.size();
  // Pad the divisor to n = m·2^t limbs (kBZ/2 < m <= kBZ) so the
  // recursion halves cleanly down to the Knuth base case, then normalize
  // the top bit. Both operands shift together; only the remainder needs
  // shifting back.
  std::size_t t = 0;
  while (((n0 + (std::size_t{1} << t) - 1) >> t) > kBurnikelThresholdLimbs) ++t;
  const std::size_t n = ((n0 + (std::size_t{1} << t) - 1) >> t) << t;
  const std::size_t shift =
      64 * (n - n0) + static_cast<std::size_t>(std::countl_zero(divisor.limbs_.back()));
  const Bignum b = divisor << shift;
  const Bignum a = *this << shift;

  // Blockwise long division with 2^(64n)-sized "digits".
  const std::size_t blocks = (a.limbs_.size() + n - 1) / n;
  Bignum q, r;
  for (std::size_t bi = blocks; bi-- > 0;) {
    DivMod part = bz_div_2n_by_1n((r << (64 * n)) + a.slice_limbs(bi * n, n), b, n);
    q = (q << (64 * n)) + part.quotient;
    r = std::move(part.remainder);
  }
  return {std::move(q), r >> shift};
}

Bignum::DivMod Bignum::divmod(const Bignum& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("Bignum division by zero");
  if (*this < divisor) return {Bignum{}, *this};
  const std::size_t n = divisor.limbs_.size();
  // The recursion only pays when both the divisor and the quotient are
  // large; Knuth-D is O((m-n)·n) and wins whenever either is small.
  if (n < kBurnikelThresholdLimbs || limbs_.size() - n < kBurnikelThresholdLimbs) {
    return divmod_knuth(divisor);
  }
  return divmod_burnikel(divisor);
}

std::uint64_t Bignum::mod_u64(std::uint64_t d) const {
  if (d == 0) throw std::domain_error("mod by zero");
  DoubleLimb rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % d;
  }
  return static_cast<std::uint64_t>(rem);
}

std::uint32_t Bignum::mod_u32(std::uint32_t d) const {
  return static_cast<std::uint32_t>(mod_u64(d));
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  // Binary GCD.
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  std::size_t shift = 0;
  while (!a.is_odd() && !b.is_odd()) {
    a = a >> 1;
    b = b >> 1;
    ++shift;
  }
  while (!a.is_odd()) a = a >> 1;
  while (!b.is_zero()) {
    while (!b.is_odd()) b = b >> 1;
    if (a > b) std::swap(a, b);
    b = b - a;
  }
  return a << shift;
}

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
  // Extended Euclid tracking only the coefficient of `a`, with values kept
  // in [0, m) via a sign flag.
  Bignum r0 = m, r1 = a % m;
  Bignum t0, t1 = 1;
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1 (signed)
    Bignum qt = q * t1;
    Bignum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != Bignum{1}) throw std::domain_error("no modular inverse");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

// ----------------------------------------------------------- Montgomery ----

Montgomery::Montgomery(const Bignum& odd_modulus) : n_(odd_modulus) {
  if (!n_.is_odd()) throw std::domain_error("Montgomery modulus must be odd");
  k_ = n_.limbs_.size();
  // n0_inv = -n^{-1} mod 2^64 via Newton-Hensel lifting: x = n0 is correct
  // mod 2^3 (odd), each step doubles the valid bits, 5 steps reach 96 > 64.
  const std::uint64_t n0 = n_.limbs_[0];
  std::uint64_t x = n0;
  for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
  n0_inv_ = ~x + 1;  // -x mod 2^64
  // rr_ = R^2 mod n where R = 2^(64k).
  const Bignum r = (Bignum{1} << (64 * k_)) % n_;
  rr_ = r.sqr() % n_;
  one_ = r;
}

Bignum Montgomery::reduce(const Bignum& t_in) const {
  // Separated REDC: t < n*R in, t*R^{-1} mod n out. Fed with Karatsuba
  // products/squares for large moduli, where it beats interleaved CIOS.
  if (t_in.limbs_.size() > 2 * k_) {
    throw std::domain_error("Montgomery::reduce operand exceeds n*R");
  }
  std::vector<std::uint64_t> t(2 * k_ + 1, 0);
  std::copy(t_in.limbs_.begin(), t_in.limbs_.end(), t.begin());
  const auto& n = n_.limbs_;
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t m = t[i] * n0_inv_;
    DoubleLimb carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const DoubleLimb cur = t[i + j] + static_cast<DoubleLimb>(m) * n[j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    for (std::size_t l = i + k_; carry; ++l) {
      const DoubleLimb cur = t[l] + carry;
      t[l] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  Bignum out;
  out.limbs_.assign(t.begin() + static_cast<std::ptrdiff_t>(k_), t.end());
  out.trim();
  if (out >= n_) out = out - n_;
  return out;
}

namespace {

// Raw CIOS (coarsely integrated operand scanning) Montgomery multiply,
// base 2^64: a, b are k-limb zero-padded arrays, t is k+2 scratch, and the
// canonical (< n) result lands in out — which may alias a and/or b, since
// it is only written at the end. Zero allocations: this is the inner loop
// of every modexp, squared away 2048+ times per RSA operation.
void cios_mul(const std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* n,
              std::size_t k, std::uint64_t n0_inv, std::uint64_t* out,
              std::uint64_t* __restrict t) {
  std::fill(t, t + k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t ai = a[i];
    DoubleLimb carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const DoubleLimb cur = t[j] + static_cast<DoubleLimb>(ai) * b[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    DoubleLimb cur = t[k] + carry;
    t[k] = static_cast<std::uint64_t>(cur);
    t[k + 1] = static_cast<std::uint64_t>(cur >> 64);

    const std::uint64_t m = t[0] * n0_inv;
    carry = (static_cast<DoubleLimb>(t[0]) + static_cast<DoubleLimb>(m) * n[0]) >> 64;
    for (std::size_t j = 1; j < k; ++j) {
      const DoubleLimb cur2 = t[j] + static_cast<DoubleLimb>(m) * n[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur2);
      carry = cur2 >> 64;
    }
    cur = t[k] + carry;
    t[k - 1] = static_cast<std::uint64_t>(cur);
    t[k] = t[k + 1] + static_cast<std::uint64_t>(cur >> 64);
    t[k + 1] = 0;
  }
  // Conditional subtract: t[0..k] < 2n here.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const SignedDoubleLimb diff = static_cast<SignedDoubleLimb>(t[i]) - n[i] - borrow;
      out[i] = static_cast<std::uint64_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
  } else {
    std::copy(t, t + k, out);
  }
}

// Separated REDC on a raw 2k-limb product: t becomes t·R^{-1} mod n in
// out (canonical). `top` is the pending carry above t[2k-1] accumulated by
// the caller (always 0 on entry here).
void redc_flat(std::uint64_t* __restrict t, const std::uint64_t* n, std::size_t k,
               std::uint64_t n0_inv, std::uint64_t* out) {
  std::uint64_t top = 0;  // carry at position i+k, folded across rows
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t m = t[i] * n0_inv;
    DoubleLimb carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const DoubleLimb cur = t[i + j] + static_cast<DoubleLimb>(m) * n[j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    const DoubleLimb cur = static_cast<DoubleLimb>(t[i + k]) + carry + top;
    t[i + k] = static_cast<std::uint64_t>(cur);
    top = static_cast<std::uint64_t>(cur >> 64);
  }
  // Result = t[k..2k) with `top` above it; one conditional subtract.
  bool ge = top != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (t[k + i] != n[i]) {
        ge = t[k + i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const SignedDoubleLimb diff = static_cast<SignedDoubleLimb>(t[k + i]) - n[i] - borrow;
      out[i] = static_cast<std::uint64_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
  } else {
    std::copy(t + k, t + 2 * k, out);
  }
}

// Montgomery squaring via the dedicated square + separated REDC: ~1.5k²
// limb products against CIOS's 2k² — squarings are >80% of a fixed-window
// exponentiation, so this is the modexp hot path. big is 2k scratch.
void mont_sqr_flat(const std::uint64_t* a, const std::uint64_t* n, std::size_t k,
                   std::uint64_t n0_inv, std::uint64_t* out, std::uint64_t* __restrict big) {
  sqr_basecase(a, k, big);
  redc_flat(big, n, k, n0_inv, out);
}

// x = 2x mod n in place (x < n canonical in, canonical out). Doubling in
// the Montgomery domain is just a shift: (x·2)·R == (x·R)·2.
void double_mod_flat(std::uint64_t* x, const std::uint64_t* n, std::size_t k) {
  const std::uint64_t top = x[k - 1] >> 63;
  for (std::size_t i = k; i-- > 1;) {
    x[i] = (x[i] << 1) | (x[i - 1] >> 63);
  }
  x[0] <<= 1;
  bool ge = top != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (x[i] != n[i]) {
        ge = x[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const SignedDoubleLimb diff = static_cast<SignedDoubleLimb>(x[i]) - n[i] - borrow;
      x[i] = static_cast<std::uint64_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
  }
}

}  // namespace

Bignum Montgomery::mul(const Bignum& a_mont, const Bignum& b_mont) const {
  // Montgomery values are canonical (< n, so at most k_ limbs); enforce it
  // rather than silently scribbling past the flat buffers below.
  if (a_mont.limbs_.size() > k_ || b_mont.limbs_.size() > k_) {
    throw std::domain_error("Montgomery::mul operand wider than modulus");
  }
  if (k_ >= kMontSeparatedLimbs) return reduce(a_mont * b_mont);
  std::vector<std::uint64_t> a(k_, 0), b(k_, 0), out(k_), t(k_ + 2);
  std::copy(a_mont.limbs_.begin(), a_mont.limbs_.end(), a.begin());
  std::copy(b_mont.limbs_.begin(), b_mont.limbs_.end(), b.begin());
  cios_mul(a.data(), b.data(), n_.limbs_.data(), k_, n0_inv_, out.data(), t.data());
  Bignum result;
  result.limbs_ = std::move(out);
  result.trim();
  return result;
}

Bignum Montgomery::sqr(const Bignum& a_mont) const {
  if (a_mont.limbs_.size() > k_) {
    throw std::domain_error("Montgomery::sqr operand wider than modulus");
  }
  if (k_ >= kMontSeparatedLimbs) return reduce(a_mont.sqr());
  // Same flat square + separated-REDC kernel the modexp loop uses (~25%
  // fewer limb products than CIOS) — Miller-Rabin's x² chain lands here.
  std::vector<std::uint64_t> a(k_, 0), out(k_), big(2 * k_);
  std::copy(a_mont.limbs_.begin(), a_mont.limbs_.end(), a.begin());
  mont_sqr_flat(a.data(), n_.limbs_.data(), k_, n0_inv_, out.data(), big.data());
  Bignum result;
  result.limbs_ = std::move(out);
  result.trim();
  return result;
}

Bignum Montgomery::to_mont(const Bignum& x) const { return mul(x % n_, rr_); }

Bignum Montgomery::from_mont(const Bignum& x) const { return reduce(x); }

namespace {

// Fixed-window size for an exponent of `bits` bits: 2^w table entries vs.
// one multiply every w squarings — the classic k-ary trade-off.
std::size_t window_bits(std::size_t bits) {
  if (bits < 16) return 1;
  if (bits < 64) return 2;
  if (bits < 256) return 3;
  if (bits < 1024) return 4;
  return 5;
}

}  // namespace

Bignum Montgomery::pow_to_mont(const Bignum& base, const Bignum& exp) const {
  if (exp.is_zero()) return one_;
  const std::size_t bits = exp.bit_length();

  if (base == Bignum{2} && k_ < kMontSeparatedLimbs && n_ > Bignum{2}) {
    // Base-2 fast path: left-to-right binary with the window multiply
    // replaced by a doubling (shift + conditional subtract). Miller-Rabin
    // fronts every candidate with a base-2 test, so most prime-generation
    // modexps take this branch; results are exactly 2^exp mod n.
    std::vector<std::uint64_t> result(k_, 0);
    std::vector<std::uint64_t> big(2 * k_);
    const std::uint64_t* n = n_.limbs_.data();
    const Bignum two_m = to_mont(Bignum{2});
    std::copy(two_m.limbs_.begin(), two_m.limbs_.end(), result.begin());
    for (std::size_t i = bits - 1; i-- > 0;) {
      mont_sqr_flat(result.data(), n, k_, n0_inv_, result.data(), big.data());
      if (exp.bit(i)) double_mod_flat(result.data(), n, k_);
    }
    Bignum out;
    out.limbs_ = std::move(result);
    out.trim();
    return out;
  }

  const std::size_t w = window_bits(bits);
  const std::size_t digits = (bits + w - 1) / w;

  if (k_ >= kMontSeparatedLimbs) {
    // Huge moduli: Bignum-level window with Karatsuba/REDC multiplies.
    std::vector<Bignum> table(std::size_t{1} << w);
    table[0] = one_;
    table[1] = to_mont(base);
    for (std::size_t i = 2; i < table.size(); ++i) table[i] = mul(table[i - 1], table[1]);
    Bignum result;
    bool started = false;
    for (std::size_t d = digits; d-- > 0;) {
      if (started) {
        for (std::size_t s = 0; s < w; ++s) result = sqr(result);
      }
      std::size_t digit = 0;
      for (std::size_t b = w; b-- > 0;) {
        digit = (digit << 1) | static_cast<std::size_t>(exp.bit(d * w + b));
      }
      if (!started) {
        if (digit == 0) continue;  // leading zero digits
        result = table[digit];
        started = true;
      } else if (digit != 0) {
        result = mul(result, table[digit]);
      }
    }
    return result;
  }

  // RSA-sized moduli: flat k-limb buffers, zero allocations in the loop.
  // The window table holds 2^w entries of k limbs each; one CIOS scratch
  // buffer serves every multiply and squaring.
  std::vector<std::uint64_t> table((std::size_t{1} << w) * k_, 0);
  std::vector<std::uint64_t> result(k_, 0);
  std::vector<std::uint64_t> t(k_ + 2);
  std::vector<std::uint64_t> big(2 * k_);
  const std::uint64_t* n = n_.limbs_.data();
  std::copy(one_.limbs_.begin(), one_.limbs_.end(), table.begin());
  const Bignum base_m = to_mont(base);
  std::copy(base_m.limbs_.begin(), base_m.limbs_.end(),
            table.begin() + static_cast<std::ptrdiff_t>(k_));
  for (std::size_t i = 2; i < (std::size_t{1} << w); ++i) {
    cios_mul(&table[(i - 1) * k_], &table[k_], n, k_, n0_inv_, &table[i * k_], t.data());
  }
  bool started = false;
  for (std::size_t d = digits; d-- > 0;) {
    if (started) {
      for (std::size_t s = 0; s < w; ++s) {
        mont_sqr_flat(result.data(), n, k_, n0_inv_, result.data(), big.data());
      }
    }
    std::size_t digit = 0;
    for (std::size_t b = w; b-- > 0;) {
      digit = (digit << 1) | static_cast<std::size_t>(exp.bit(d * w + b));
    }
    if (!started) {
      if (digit == 0) continue;  // leading zero digits
      std::copy(table.begin() + static_cast<std::ptrdiff_t>(digit * k_),
                table.begin() + static_cast<std::ptrdiff_t>((digit + 1) * k_), result.begin());
      started = true;
    } else if (digit != 0) {
      cios_mul(result.data(), &table[digit * k_], n, k_, n0_inv_, result.data(), t.data());
    }
  }
  Bignum out;
  out.limbs_ = std::move(result);
  out.trim();
  return out;
}

Bignum Montgomery::pow(const Bignum& base, const Bignum& exp) const {
  if (exp.is_zero()) return Bignum{1} % n_;
  return from_mont(pow_to_mont(base, exp));
}

Bignum Bignum::mod_pow(const Bignum& base, const Bignum& exp, const Bignum& mod) {
  if (mod.is_zero()) throw std::domain_error("mod_pow modulus zero");
  if (mod == Bignum{1}) return Bignum{};
  if (mod.is_odd()) {
    Montgomery mont(mod);
    return mont.pow(base, exp);
  }
  // Rare path (even modulus): plain square-and-multiply with divmod.
  Bignum result{1};
  Bignum b = base % mod;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = result.sqr() % mod;
    if (exp.bit(i)) result = (result * b) % mod;
  }
  return result;
}

// -------------------------------------------------------------- primes ----

Bignum Bignum::random_bits(Rng& rng, std::size_t bits) {
  // One rng.next() per 32-bit word, low halves only: the draw pattern of
  // the 32-bit-limb core this file replaced. Changing it would silently
  // regenerate every seed's primes, keys and certificates.
  const std::size_t words = (bits + 31) / 32;
  Bignum out;
  out.limbs_.assign((words + 1) / 2, 0);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t draw = rng.next() & 0xffffffffULL;
    out.limbs_[w / 2] |= draw << (32 * (w % 2));
  }
  const std::size_t excess = words * 32 - bits;
  if (excess && words) {
    const std::size_t top_word = words - 1;
    const std::uint64_t mask = (0xffffffffULL >> excess) << (32 * (top_word % 2));
    out.limbs_[top_word / 2] &= (top_word % 2) ? (mask | 0xffffffffULL) : mask;
  }
  out.trim();
  return out;
}

Bignum Bignum::random_below(Rng& rng, const Bignum& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below(0)");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    Bignum candidate = random_bits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

namespace {

// Primes below 8192 for trial division; computed once.
const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::uint32_t kLimit = 8192;
    std::vector<bool> sieve(kLimit, true);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint32_t j = i * 2; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}

// The same primes packed greedily into 64-bit products: one multi-limb
// mod per pack instead of one per prime cuts the trial-division cost of
// prime generation ~4-5x (most candidates die here, before any modexp).
struct SmallPrimePack {
  std::uint64_t product;
  std::vector<std::uint32_t> primes;
};

const std::vector<SmallPrimePack>& small_prime_packs() {
  static const std::vector<SmallPrimePack> packs = [] {
    std::vector<SmallPrimePack> out;
    SmallPrimePack pack{1, {}};
    for (const std::uint32_t p : small_primes()) {
      if (pack.product > (~std::uint64_t{0}) / p) {
        out.push_back(std::move(pack));
        pack = {1, {}};
      }
      pack.product *= p;
      pack.primes.push_back(p);
    }
    if (!pack.primes.empty()) out.push_back(std::move(pack));
    return out;
  }();
  return packs;
}

// Requires n > every small prime (so divisibility == compositeness).
bool has_small_prime_factor(const Bignum& n) {
  for (const auto& pack : small_prime_packs()) {
    const std::uint64_t r = n.mod_u64(pack.product);
    for (const std::uint32_t p : pack.primes) {
      if (r % p == 0) return true;
    }
  }
  return false;
}

bool mr_round(const Montgomery& mont, const Bignum& minus1_mont, const Bignum& d, std::size_t r,
              const Bignum& base) {
  // Entirely in the Montgomery domain: representations are canonical
  // (reduced below n), so equality there is equality mod n.
  Bignum x = mont.pow_to_mont(base, d);
  if (x == mont.one_mont() || x == minus1_mont) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = mont.sqr(x);
    if (x == minus1_mont) return true;
    if (x == mont.one_mont()) return false;
  }
  return false;
}

// Miller-Rabin proper; the caller has already trial-divided n.
bool miller_rabin(const Bignum& n, int rounds, Rng& rng) {
  const Bignum n_minus_1 = n - Bignum{1};
  Bignum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  Montgomery mont(n);
  const Bignum minus1_mont = mont.to_mont(n_minus_1);
  if (!mr_round(mont, minus1_mont, d, r, Bignum{2})) return false;
  for (int i = 0; i < rounds; ++i) {
    Bignum base = Bignum::random_below(rng, n - Bignum{3}) + Bignum{2};  // [2, n-2]
    if (!mr_round(mont, minus1_mont, d, r, base)) return false;
  }
  return true;
}

}  // namespace

bool Bignum::is_probable_prime(const Bignum& n, int rounds, Rng& rng) {
  if (n < Bignum{2}) return false;
  if (n.bit_length() <= 13) {
    // Small enough that the trial-division primes cover sqrt(n).
    const std::uint64_t v = n.low_u64();
    for (const std::uint32_t p : small_primes()) {
      if (static_cast<std::uint64_t>(p) * p > v) return true;
      if (v % p == 0) return false;
    }
    return true;
  }
  if (has_small_prime_factor(n)) return false;
  return miller_rabin(n, rounds, rng);
}

Bignum Bignum::generate_prime(Rng& rng, std::size_t bits, int mr_rounds) {
  if (bits < 16) throw std::invalid_argument("prime too small");
  for (;;) {
    Bignum candidate = random_bits(rng, bits);
    candidate.set_bit(bits - 1);
    candidate.set_bit(bits - 2);  // keep products at full length
    candidate.set_bit(0);
    // The packed sieve rejects ~88% of candidates before any modexp; the
    // candidate order (and every Rng draw) is identical to the pre-sieve
    // path, so generated primes are unchanged for a given seed.
    if (has_small_prime_factor(candidate)) continue;
    if (miller_rabin(candidate, mr_rounds, rng)) return candidate;
  }
}

}  // namespace opcua_study
