// Minimal ASN.1 DER encoder/decoder — just enough X.509.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/bignum.hpp"
#include "util/bytes.hpp"

namespace opcua_study {

namespace der {

inline constexpr std::uint8_t kBoolean = 0x01;
inline constexpr std::uint8_t kInteger = 0x02;
inline constexpr std::uint8_t kBitString = 0x03;
inline constexpr std::uint8_t kOctetString = 0x04;
inline constexpr std::uint8_t kNull = 0x05;
inline constexpr std::uint8_t kOid = 0x06;
inline constexpr std::uint8_t kUtf8String = 0x0c;
inline constexpr std::uint8_t kPrintableString = 0x13;
inline constexpr std::uint8_t kIa5String = 0x16;
inline constexpr std::uint8_t kUtcTime = 0x17;
inline constexpr std::uint8_t kGeneralizedTime = 0x18;
inline constexpr std::uint8_t kSequence = 0x30;
inline constexpr std::uint8_t kSet = 0x31;

/// Context-specific tag: [n], optionally constructed.
constexpr std::uint8_t context(unsigned n, bool constructed) {
  return static_cast<std::uint8_t>(0x80 | (constructed ? 0x20 : 0x00) | n);
}

}  // namespace der

/// Object identifier, e.g. {1,2,840,113549,1,1,11}.
struct Oid {
  std::vector<std::uint32_t> arcs;

  bool operator==(const Oid&) const = default;
  std::string to_string() const;
  Bytes encode_body() const;
  static Oid decode_body(std::span<const std::uint8_t> body);
};

namespace oid {
// PKCS#1 signature/encryption algorithms.
extern const Oid kRsaEncryption;      // 1.2.840.113549.1.1.1
extern const Oid kMd5WithRsa;         // 1.2.840.113549.1.1.4
extern const Oid kSha1WithRsa;        // 1.2.840.113549.1.1.5
extern const Oid kSha256WithRsa;      // 1.2.840.113549.1.1.11
// X.500 attribute types.
extern const Oid kCommonName;         // 2.5.4.3
extern const Oid kOrganization;       // 2.5.4.10
extern const Oid kCountry;            // 2.5.4.6
// X.509 v3 extensions.
extern const Oid kSubjectAltName;     // 2.5.29.17
extern const Oid kBasicConstraints;   // 2.5.29.19
extern const Oid kKeyUsage;           // 2.5.29.15
}  // namespace oid

/// DER writer. Nested structures are written through lambdas so lengths are
/// computed bottom-up, matching DER's definite-length requirement.
class DerWriter {
 public:
  void tlv(std::uint8_t tag, std::span<const std::uint8_t> content);
  void boolean(bool v);
  void integer(const Bignum& v);
  void integer(std::int64_t v);
  void null();
  void oid_value(const Oid& o);
  void bit_string(std::span<const std::uint8_t> bits, unsigned unused_bits = 0);
  void octet_string(std::span<const std::uint8_t> data);
  void utf8_string(std::string_view s);
  void printable_string(std::string_view s);
  void ia5_string(std::string_view s);
  /// days since 1970-01-01, rendered as UTCTime (or GeneralizedTime >= 2050).
  void time(std::int64_t days_since_epoch);

  void sequence(const std::function<void(DerWriter&)>& fill) { constructed(der::kSequence, fill); }
  void set(const std::function<void(DerWriter&)>& fill) { constructed(der::kSet, fill); }
  void constructed(std::uint8_t tag, const std::function<void(DerWriter&)>& fill);

  void raw(std::span<const std::uint8_t> already_encoded);

  Bytes take() { return std::move(buf_); }
  const Bytes& bytes() const { return buf_; }

 private:
  void length(std::size_t len);
  Bytes buf_;
};

/// Sequential DER parser over a single level; descend by constructing a new
/// parser over a TLV's content.
class DerParser {
 public:
  struct Tlv {
    std::uint8_t tag = 0;
    std::span<const std::uint8_t> content;
    std::span<const std::uint8_t> full;  // header + content (for TBS capture)
  };

  explicit DerParser(std::span<const std::uint8_t> data) : data_(data) {}

  bool done() const { return pos_ >= data_.size(); }
  std::uint8_t peek_tag() const;
  Tlv next();
  Tlv expect(std::uint8_t tag);

  Bignum read_integer();
  Oid read_oid();
  std::string read_string();        // UTF8/Printable/IA5
  std::int64_t read_time_days();    // UTCTime or GeneralizedTime
  Bytes read_octet_string();
  /// BIT STRING content without the leading unused-bits byte.
  Bytes read_bit_string();

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace opcua_study
