#include "crypto/hash.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace opcua_study {

std::size_t digest_size(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::md5: return Md5::kDigestSize;
    case HashAlgorithm::sha1: return Sha1::kDigestSize;
    case HashAlgorithm::sha256: return Sha256::kDigestSize;
  }
  throw std::logic_error("bad hash algorithm");
}

std::string hash_name(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::md5: return "MD5";
    case HashAlgorithm::sha1: return "SHA-1";
    case HashAlgorithm::sha256: return "SHA-256";
  }
  return "?";
}

// ---------------------------------------------------------------- MD5 ----

static constexpr std::uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

static constexpr int kMd5S[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                                  5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                                  4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                                  6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

Md5::Md5() {
  h_[0] = 0x67452301;
  h_[1] = 0xefcdab89;
  h_[2] = 0x98badcfe;
  h_[3] = 0x10325476;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) | (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    f += a + kMd5K[i] + m[g];
    a = d;
    d = c;
    c = b;
    b += std::rotl(f, kMd5S[i]);
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
}

void Md5::update(std::span<const std::uint8_t> data) {
  total_ += data.size();
  for (std::uint8_t byte : data) {
    buf_[buf_len_++] = byte;
    if (buf_len_ == 64) {
      process_block(buf_);
      buf_len_ = 0;
    }
  }
}

std::array<std::uint8_t, Md5::kDigestSize> Md5::digest() {
  const std::uint64_t bit_len = total_ * 8;
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buf_len_ < 56) ? 56 - buf_len_ : 120 - buf_len_;
  update({pad, pad_len});
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  // update() counts the length bytes too, but total_ is no longer used.
  update({len_le, 8});
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 4; ++b) out[static_cast<std::size_t>(i * 4 + b)] = static_cast<std::uint8_t>(h_[i] >> (8 * b));
  }
  return out;
}

// --------------------------------------------------------------- SHA-1 ----

Sha1::Sha1() {
  h_[0] = 0x67452301;
  h_[1] = 0xefcdab89;
  h_[2] = 0x98badcfe;
  h_[3] = 0x10325476;
  h_[4] = 0xc3d2e1f0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_ += data.size();
  for (std::uint8_t byte : data) {
    buf_[buf_len_++] = byte;
    if (buf_len_ == 64) {
      process_block(buf_);
      buf_len_ = 0;
    }
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::digest() {
  const std::uint64_t bit_len = total_ * 8;
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buf_len_ < 56) ? 56 - buf_len_ : 120 - buf_len_;
  update({pad, pad_len});
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  update({len_be, 8});
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i) {
    for (int b = 0; b < 4; ++b) {
      out[static_cast<std::size_t>(i * 4 + b)] = static_cast<std::uint8_t>(h_[i] >> (8 * (3 - b)));
    }
  }
  return out;
}

// ------------------------------------------------------------- SHA-256 ----

static constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

Sha256::Sha256() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_ += data.size();
  for (std::uint8_t byte : data) {
    buf_[buf_len_++] = byte;
    if (buf_len_ == 64) {
      process_block(buf_);
      buf_len_ = 0;
    }
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::digest() {
  const std::uint64_t bit_len = total_ * 8;
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buf_len_ < 56) ? 56 - buf_len_ : 120 - buf_len_;
  update({pad, pad_len});
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  update({len_be, 8});
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) {
    for (int b = 0; b < 4; ++b) {
      out[static_cast<std::size_t>(i * 4 + b)] = static_cast<std::uint8_t>(h_[i] >> (8 * (3 - b)));
    }
  }
  return out;
}

// ------------------------------------------------------------ one-shot ----

Bytes hash(HashAlgorithm alg, std::span<const std::uint8_t> data) {
  switch (alg) {
    case HashAlgorithm::md5: {
      Md5 h;
      h.update(data);
      auto d = h.digest();
      return Bytes(d.begin(), d.end());
    }
    case HashAlgorithm::sha1: {
      Sha1 h;
      h.update(data);
      auto d = h.digest();
      return Bytes(d.begin(), d.end());
    }
    case HashAlgorithm::sha256: {
      Sha256 h;
      h.update(data);
      auto d = h.digest();
      return Bytes(d.begin(), d.end());
    }
  }
  throw std::logic_error("bad hash algorithm");
}

Bytes hash(HashAlgorithm alg, std::string_view data) {
  return hash(alg, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace opcua_study
