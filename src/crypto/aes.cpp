#include "crypto/aes.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace opcua_study {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t inv_sbox(std::uint8_t v) {
  // Computed lazily once; the inverse S-box is small enough to derive.
  static const auto table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int i = 0; i < 256; ++i) t[kSbox[i]] = static_cast<std::uint8_t>(i);
    return t;
  }();
  return table[v];
}

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

Aes::Aes(std::span<const std::uint8_t> key) {
  const std::size_t nk = key.size() / 4;
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    throw std::invalid_argument("AES key must be 16/24/32 bytes");
  }
  rounds_ = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4 * static_cast<std::size_t>(rounds_ + 1);
  std::uint8_t w[60][4];
  for (std::size_t i = 0; i < nk; ++i) {
    for (int b = 0; b < 4; ++b) w[i][b] = key[i * 4 + static_cast<std::size_t>(b)];
  }
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, w[i - 1], 4);
    if (i % nk == 0) {
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / nk]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    } else if (nk > 6 && i % nk == 4) {
      for (auto& t : temp) t = kSbox[t];
    }
    for (int b = 0; b < 4; ++b) w[i][b] = static_cast<std::uint8_t>(w[i - nk][b] ^ temp[b]);
  }
  for (std::size_t i = 0; i < total_words; ++i) {
    std::memcpy(&round_keys_[i * 4], w[i], 4);
  }
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ round_keys_[i]);
  for (int round = 1; round <= rounds_; ++round) {
    // SubBytes
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[4*col + row])
    std::uint8_t t[16];
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        t[4 * col + row] = s[4 * ((col + row) % 4) + row];
      }
    }
    std::memcpy(s, t, 16);
    // MixColumns (skipped in final round)
    if (round != rounds_) {
      for (int col = 0; col < 4; ++col) {
        std::uint8_t* c = &s[4 * col];
        const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        c[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        c[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  }
  std::memcpy(out, s, 16);
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ round_keys_[rounds_ * 16 + i]);
  for (int round = rounds_ - 1; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t t[16];
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        t[4 * ((col + row) % 4) + row] = s[4 * col + row];
      }
    }
    std::memcpy(s, t, 16);
    // InvSubBytes
    for (auto& b : s) b = inv_sbox(b);
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
    // InvMixColumns (skipped before round 0's key was the last step)
    if (round != 0) {
      for (int col = 0; col < 4; ++col) {
        std::uint8_t* c = &s[4 * col];
        const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9));
        c[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13));
        c[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11));
        c[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14));
      }
    }
  }
  std::memcpy(out, s, 16);
}

Bytes aes_cbc_encrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> plaintext) {
  if (iv.size() != 16) throw std::invalid_argument("CBC IV must be 16 bytes");
  if (plaintext.size() % 16 != 0) throw std::invalid_argument("CBC plaintext not block-aligned");
  Aes aes(key);
  Bytes out(plaintext.size());
  std::uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  for (std::size_t off = 0; off < plaintext.size(); off += 16) {
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i) block[i] = static_cast<std::uint8_t>(plaintext[off + static_cast<std::size_t>(i)] ^ chain[i]);
    aes.encrypt_block(block, &out[off]);
    std::memcpy(chain, &out[off], 16);
  }
  return out;
}

Bytes aes_cbc_decrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> ciphertext) {
  if (iv.size() != 16) throw std::invalid_argument("CBC IV must be 16 bytes");
  if (ciphertext.size() % 16 != 0) throw std::invalid_argument("CBC ciphertext not block-aligned");
  Aes aes(key);
  Bytes out(ciphertext.size());
  std::uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  for (std::size_t off = 0; off < ciphertext.size(); off += 16) {
    std::uint8_t block[16];
    aes.decrypt_block(&ciphertext[off], block);
    for (int i = 0; i < 16; ++i) out[off + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
    std::memcpy(chain, &ciphertext[off], 16);
  }
  return out;
}

}  // namespace opcua_study
