#include "crypto/hmac.hpp"

namespace opcua_study {

Bytes hmac(HashAlgorithm alg, std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlockSize = 64;  // all three hashes use 64-byte blocks
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlockSize) k = hash(alg, k);
  k.resize(kBlockSize, 0);

  Bytes inner(kBlockSize);
  Bytes outer(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    outer[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner.insert(inner.end(), data.begin(), data.end());
  Bytes inner_hash = hash(alg, inner);
  outer.insert(outer.end(), inner_hash.begin(), inner_hash.end());
  return hash(alg, outer);
}

Bytes p_hash(HashAlgorithm alg, std::span<const std::uint8_t> secret,
             std::span<const std::uint8_t> seed, std::size_t length) {
  Bytes out;
  out.reserve(length);
  Bytes a(seed.begin(), seed.end());  // A(0) = seed
  while (out.size() < length) {
    a = hmac(alg, secret, a);  // A(i) = HMAC(secret, A(i-1))
    Bytes a_seed = a;
    a_seed.insert(a_seed.end(), seed.begin(), seed.end());
    Bytes chunk = hmac(alg, secret, a_seed);
    const std::size_t take = std::min(chunk.size(), length - out.size());
    out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace opcua_study
