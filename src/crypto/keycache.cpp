#include "crypto/keycache.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace opcua_study {

std::string KeyFactory::default_cache_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_KEY_CACHE")) return env;
  return ".opcua_study_keycache";
}

KeyFactory::KeyFactory(std::uint64_t seed, std::string cache_path)
    : seed_(seed), cache_path_(std::move(cache_path)) {
  if (cache_path_.empty()) return;
  std::ifstream in(cache_path_);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::uint64_t file_seed = 0;
    std::string label, p_hex, q_hex;
    std::size_t bits = 0;
    if (!(fields >> file_seed >> label >> bits >> p_hex >> q_hex)) continue;
    if (file_seed != seed_) continue;
    entries_[{label, bits}] = {p_hex, q_hex};
  }
}

KeyFactory::~KeyFactory() { flush(); }

void KeyFactory::flush() {
  if (cache_path_.empty() || !dirty_) return;
  // Rewrite the whole file for our seed while preserving other seeds' rows.
  std::vector<std::string> foreign;
  {
    std::ifstream in(cache_path_);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::uint64_t file_seed = 0;
      if ((fields >> file_seed) && file_seed != seed_) foreign.push_back(line);
    }
  }
  std::ofstream out(cache_path_, std::ios::trunc);
  for (const auto& line : foreign) out << line << '\n';
  for (const auto& [key, pq] : entries_) {
    out << seed_ << ' ' << key.first << ' ' << key.second << ' ' << pq.first << ' ' << pq.second
        << '\n';
  }
  dirty_ = false;
}

RsaKeyPair KeyFactory::assemble(const Bignum& p_in, const Bignum& q_in) const {
  Bignum p = p_in, q = q_in;
  if (p < q) std::swap(p, q);
  RsaPrivateKey priv;
  priv.p = p;
  priv.q = q;
  priv.n = p * q;
  priv.e = Bignum{65537};
  const Bignum p1 = p - Bignum{1};
  const Bignum q1 = q - Bignum{1};
  priv.d = Bignum::mod_inverse(priv.e, p1 * q1);
  priv.dp = priv.d % p1;
  priv.dq = priv.d % q1;
  priv.qinv = Bignum::mod_inverse(q, p);
  return {priv.public_key(), priv};
}

RsaKeyPair KeyFactory::get(const std::string& label, std::size_t bits) {
  const auto key = std::make_pair(label, bits);
  if (auto it = entries_.find(key); it != entries_.end()) {
    ++cache_hits_;
    return assemble(Bignum::from_hex(it->second.first), Bignum::from_hex(it->second.second));
  }
  Rng rng = Rng(seed_).child("rsa-key").child(label).child(std::to_string(bits));
  const RsaKeyPair pair = [&] {
    for (;;) {
      Bignum p = Bignum::generate_prime(rng, bits / 2);
      Bignum q = Bignum::generate_prime(rng, bits / 2);
      if (p == q) continue;
      if ((p - Bignum{1}).mod_u32(65537) == 0 || (q - Bignum{1}).mod_u32(65537) == 0) continue;
      if ((p * q).bit_length() != bits) continue;
      return assemble(p, q);
    }
  }();
  entries_[key] = {pair.priv.p.to_hex(), pair.priv.q.to_hex()};
  ++generated_;
  dirty_ = true;
  return pair;
}

}  // namespace opcua_study
