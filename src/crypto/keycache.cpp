#include "crypto/keycache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

std::string KeyFactory::default_cache_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_KEY_CACHE")) return env;
  return ".opcua_study_keycache";
}

KeyFactory::KeyFactory(std::uint64_t seed, std::string cache_path)
    : seed_(seed), cache_path_(std::move(cache_path)) {
  if (cache_path_.empty()) return;
  std::ifstream in(cache_path_);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::uint64_t file_seed = 0;
    std::string label, p_hex, q_hex;
    std::size_t bits = 0;
    if (!(fields >> file_seed >> label >> bits >> p_hex >> q_hex)) continue;
    if (file_seed != seed_) continue;
    entries_[{label, bits}] = {p_hex, q_hex};
  }
}

KeyFactory::~KeyFactory() { flush(); }

std::size_t KeyFactory::generated() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return generated_;
}

std::size_t KeyFactory::cache_hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

void KeyFactory::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (cache_path_.empty() || !dirty_) return;
  // Preserve other seeds' rows, then write everything to a temp file and
  // rename it into place — the old in-place truncate lost the entire
  // corpus (every seed's primes) when a run died mid-flush.
  std::vector<std::string> foreign;
  {
    std::ifstream in(cache_path_);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::uint64_t file_seed = 0;
      if ((fields >> file_seed) && file_seed != seed_) foreign.push_back(line);
    }
  }
  const std::string tmp_path = cache_path_ + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    for (const auto& line : foreign) out << line << '\n';
    for (const auto& [key, pq] : entries_) {
      out << seed_ << ' ' << key.first << ' ' << key.second << ' ' << pq.first << ' ' << pq.second
          << '\n';
    }
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return;  // keep the old cache intact; stay dirty for the next flush
    }
  }
  if (std::rename(tmp_path.c_str(), cache_path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return;
  }
  dirty_ = false;
}

RsaKeyPair KeyFactory::assemble(const Bignum& p_in, const Bignum& q_in) const {
  Bignum p = p_in, q = q_in;
  if (p < q) std::swap(p, q);
  RsaPrivateKey priv;
  priv.p = p;
  priv.q = q;
  priv.n = p * q;
  priv.e = Bignum{65537};
  const Bignum p1 = p - Bignum{1};
  const Bignum q1 = q - Bignum{1};
  priv.d = Bignum::mod_inverse(priv.e, p1 * q1);
  priv.dp = priv.d % p1;
  priv.dq = priv.d % q1;
  priv.qinv = Bignum::mod_inverse(q, p);
  return {priv.public_key(), priv};
}

std::pair<Bignum, Bignum> KeyFactory::generate_pq(std::uint64_t seed, const std::string& label,
                                                  std::size_t bits) {
  Rng rng = Rng(seed).child("rsa-key").child(label).child(std::to_string(bits));
  for (;;) {
    Bignum p = Bignum::generate_prime(rng, bits / 2);
    Bignum q = Bignum::generate_prime(rng, bits / 2);
    if (p == q) continue;
    if ((p - Bignum{1}).mod_u32(65537) == 0 || (q - Bignum{1}).mod_u32(65537) == 0) continue;
    if ((p * q).bit_length() != bits) continue;
    if (p < q) std::swap(p, q);  // cache rows store the normalized order
    return {p, q};
  }
}

RsaKeyPair KeyFactory::get(const std::string& label, std::size_t bits) {
  const auto key = std::make_pair(label, bits);
  {
    std::pair<std::string, std::string> pq_hex;
    bool hit = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = entries_.find(key); it != entries_.end()) {
        ++cache_hits_;
        obs::add(obs::Metric::key_cache_hits);
        pq_hex = it->second;
        hit = true;
      }
    }
    // Derive the CRT parts (modular inverses) outside the lock so
    // concurrent post-prefetch hitters don't serialize on it.
    if (hit) return assemble(Bignum::from_hex(pq_hex.first), Bignum::from_hex(pq_hex.second));
  }
  // Generate outside the lock — this is the expensive part, and the result
  // is a pure function of (seed, label, bits), so a concurrent get() for
  // the same key produces the identical entry.
  const auto [p, q] = generate_pq(seed_, label, bits);
  const RsaKeyPair pair = assemble(p, q);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (entries_.emplace(key, std::make_pair(p.to_hex(), q.to_hex())).second) {
      ++generated_;
      obs::add(obs::Metric::keys_generated);
      dirty_ = true;
    }
  }
  return pair;
}

void KeyFactory::prefetch(const std::vector<std::pair<std::string, std::size_t>>& wants,
                          int threads) {
  std::vector<std::pair<std::string, std::size_t>> missing;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::set<std::pair<std::string, std::size_t>> seen;
    for (const auto& want : wants) {
      if (entries_.contains(want)) continue;
      if (seen.insert(want).second) missing.push_back(want);
    }
  }
  if (missing.empty()) return;
  const ThreadPool pool(threads);
  std::vector<std::pair<std::string, std::string>> results(missing.size());
  pool.parallel_for(missing.size(), [&](std::size_t i) {
    const auto [p, q] = generate_pq(seed_, missing[i].first, missing[i].second);
    results[i] = {p.to_hex(), q.to_hex()};
  });
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    if (entries_.emplace(missing[i], std::move(results[i])).second) {
      ++generated_;
      obs::add(obs::Metric::keys_generated);
      dirty_ = true;
    }
  }
}

}  // namespace opcua_study
