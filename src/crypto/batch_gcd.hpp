// Heninger-style batch GCD over RSA moduli (product + remainder trees).
//
// §5.3 of the paper: "we have not found any evidence of key material that
// is subject to insufficient randomness by pairwise checking the keys of
// all received certificates for shared primes". The product/remainder tree
// brings the cost from O(n²) GCDs to O(n log² n) big-integer work, which is
// what makes scanning the full ~1300-modulus corpus feasible.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/bignum.hpp"

namespace opcua_study {

struct BatchGcdResult {
  /// Per-modulus non-trivial factor (zero Bignum if the modulus shares no
  /// prime with any other modulus in the batch).
  std::vector<Bignum> shared_factor;
  std::size_t affected() const;
};

/// Detect moduli sharing a prime with any other modulus in `moduli`.
/// Duplicate moduli are reported as sharing (gcd = the modulus itself).
BatchGcdResult batch_gcd(const std::vector<Bignum>& moduli);

/// O(n²) reference used to validate batch_gcd in tests.
BatchGcdResult pairwise_gcd(const std::vector<Bignum>& moduli);

}  // namespace opcua_study
