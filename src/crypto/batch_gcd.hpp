// Heninger-style batch GCD over RSA moduli (product + remainder trees).
//
// §5.3 of the paper: "we have not found any evidence of key material that
// is subject to insufficient randomness by pairwise checking the keys of
// all received certificates for shared primes". The product/remainder tree
// brings the cost from O(n²) GCDs to O(n log² n) big-integer work; with
// the 64-bit Karatsuba/Burnikel-Ziegler core underneath and the tree
// levels parallelized, the same sweep handles 100k+ moduli — the scale a
// full synthetic-Internet certificate corpus produces.
//
// Tree layout: the plain product tree is collapsed level by level (only
// the root P survives); the *squares* needed by the remainder tree are a
// second tree built bottom-up from one dedicated squaring per modulus —
// sq(parent) = sq(left)·sq(right) — so no node is ever squared twice and
// odd-count carry nodes reuse their child's square verbatim.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/bignum.hpp"

namespace opcua_study {

struct BatchGcdResult {
  /// Per-modulus non-trivial factor (zero Bignum if the modulus shares no
  /// prime with any other modulus in the batch).
  std::vector<Bignum> shared_factor;
  std::size_t affected() const;
};

/// Detect moduli sharing a prime with any other modulus in `moduli`.
/// Duplicate moduli are reported as sharing (gcd = the modulus itself).
/// `threads` <= 0 uses hardware concurrency, 1 runs serially; the result
/// is identical for every thread count (workers fill disjoint tree slots).
BatchGcdResult batch_gcd(const std::vector<Bignum>& moduli, int threads = 0);

/// O(n²) reference used to validate batch_gcd in tests.
BatchGcdResult pairwise_gcd(const std::vector<Bignum>& moduli);

}  // namespace opcua_study
