// AES-128/192/256 in CBC mode.
//
// OPC UA SecureConversation encrypts symmetric message chunks with
// AES-CBC; the IV comes from the P_SHA key derivation, not from a
// per-message random (OPC 10000-6). Straightforward table-free
// implementation: correctness and clarity over speed — the scan pipeline's
// bottleneck is RSA, not AES.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace opcua_study {

class Aes {
 public:
  /// Key must be 16, 24 or 32 bytes.
  explicit Aes(std::span<const std::uint8_t> key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  int rounds_ = 0;
  std::uint8_t round_keys_[15 * 16] = {};
};

/// CBC without padding: data size must be a multiple of 16 (OPC UA pads at
/// the SecureConversation layer before encrypting).
Bytes aes_cbc_encrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> plaintext);
Bytes aes_cbc_decrypt(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv,
                      std::span<const std::uint8_t> ciphertext);

}  // namespace opcua_study
