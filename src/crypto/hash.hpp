// From-scratch MD5 / SHA-1 / SHA-256.
//
// The study's central certificate analysis (Fig. 4, §5.2) classifies
// certificates by signature hash function — including deprecated MD5 and
// SHA-1 — so the library must be able to *create* and *verify* signatures
// over all three. Never use these implementations to protect real systems;
// they exist to reproduce a measurement study.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace opcua_study {

enum class HashAlgorithm { md5, sha1, sha256 };

std::size_t digest_size(HashAlgorithm alg);
std::string hash_name(HashAlgorithm alg);

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  Md5();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, kDigestSize> digest();

 private:
  void process_block(const std::uint8_t* block);
  std::uint32_t h_[4];
  std::uint64_t total_ = 0;
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
};

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  Sha1();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, kDigestSize> digest();

 private:
  void process_block(const std::uint8_t* block);
  std::uint32_t h_[5];
  std::uint64_t total_ = 0;
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
};

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  Sha256();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, kDigestSize> digest();

 private:
  void process_block(const std::uint8_t* block);
  std::uint32_t h_[8];
  std::uint64_t total_ = 0;
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
};

/// One-shot convenience.
Bytes hash(HashAlgorithm alg, std::span<const std::uint8_t> data);
Bytes hash(HashAlgorithm alg, std::string_view data);

}  // namespace opcua_study
