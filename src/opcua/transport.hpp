// OPC UA TCP transport framing (OPC 10000-6 §7.1).
//
// Message types: HEL/ACK/ERR during connection setup, OPN for
// OpenSecureChannel, MSG for secured service calls, CLO for channel close.
// The study's scanner talks to every simulated host through exactly these
// frames, on the paper's standard port 4840.
#pragma once

#include <string>

#include "opcua/status.hpp"
#include "util/bytes.hpp"

namespace opcua_study {

inline constexpr std::uint16_t kOpcUaDefaultPort = 4840;
inline constexpr std::uint32_t kTransportProtocolVersion = 0;

struct HelloMessage {
  std::uint32_t protocol_version = kTransportProtocolVersion;
  std::uint32_t receive_buffer_size = 65536;
  std::uint32_t send_buffer_size = 65536;
  std::uint32_t max_message_size = 16 * 1024 * 1024;
  std::uint32_t max_chunk_count = 0;
  std::string endpoint_url;

  Bytes encode() const;
  static HelloMessage decode(std::span<const std::uint8_t> body);
};

struct AcknowledgeMessage {
  std::uint32_t protocol_version = kTransportProtocolVersion;
  std::uint32_t receive_buffer_size = 65536;
  std::uint32_t send_buffer_size = 65536;
  std::uint32_t max_message_size = 16 * 1024 * 1024;
  std::uint32_t max_chunk_count = 0;

  Bytes encode() const;
  static AcknowledgeMessage decode(std::span<const std::uint8_t> body);
};

struct ErrorMessage {
  StatusCode error = StatusCode::BadInternalError;
  std::string reason;

  Bytes encode() const;
  static ErrorMessage decode(std::span<const std::uint8_t> body);
};

/// A complete framed transport message.
struct Frame {
  std::string type;  // "HEL", "ACK", "ERR", "OPN", "MSG", "CLO"
  std::uint8_t chunk = 'F';
  Bytes body;
};

/// Prepend the 8-byte header (type + 'F' + total size).
Bytes frame_message(std::string_view type, std::span<const std::uint8_t> body);
/// Split a wire message; throws DecodeError on malformed framing.
Frame parse_frame(std::span<const std::uint8_t> wire);

/// Abstract request/response byte transport. UA-TCP on this stack is strictly
/// lock-step (one request frame, one response frame), which keeps the
/// simulated Internet single-threaded and deterministic.
class MessageTransport {
 public:
  virtual ~MessageTransport() = default;
  /// Send one frame, receive one frame.
  virtual Bytes roundtrip(const Bytes& request) = 0;
  /// Send a frame with no expected response (CLO).
  virtual void send_oneway(const Bytes& message) = 0;
};

}  // namespace opcua_study
