#include "opcua/transport.hpp"

#include "opcua/encoding.hpp"

namespace opcua_study {

Bytes HelloMessage::encode() const {
  UaWriter w;
  w.u32(protocol_version);
  w.u32(receive_buffer_size);
  w.u32(send_buffer_size);
  w.u32(max_message_size);
  w.u32(max_chunk_count);
  w.string(endpoint_url);
  return w.take();
}

HelloMessage HelloMessage::decode(std::span<const std::uint8_t> body) {
  UaReader r(body);
  HelloMessage m;
  m.protocol_version = r.u32();
  m.receive_buffer_size = r.u32();
  m.send_buffer_size = r.u32();
  m.max_message_size = r.u32();
  m.max_chunk_count = r.u32();
  m.endpoint_url = r.string();
  return m;
}

Bytes AcknowledgeMessage::encode() const {
  UaWriter w;
  w.u32(protocol_version);
  w.u32(receive_buffer_size);
  w.u32(send_buffer_size);
  w.u32(max_message_size);
  w.u32(max_chunk_count);
  return w.take();
}

AcknowledgeMessage AcknowledgeMessage::decode(std::span<const std::uint8_t> body) {
  UaReader r(body);
  AcknowledgeMessage m;
  m.protocol_version = r.u32();
  m.receive_buffer_size = r.u32();
  m.send_buffer_size = r.u32();
  m.max_message_size = r.u32();
  m.max_chunk_count = r.u32();
  return m;
}

Bytes ErrorMessage::encode() const {
  UaWriter w;
  w.u32(static_cast<std::uint32_t>(error));
  w.string(reason);
  return w.take();
}

ErrorMessage ErrorMessage::decode(std::span<const std::uint8_t> body) {
  UaReader r(body);
  ErrorMessage m;
  m.error = static_cast<StatusCode>(r.u32());
  m.reason = r.string();
  return m;
}

Bytes frame_message(std::string_view type, std::span<const std::uint8_t> body) {
  if (type.size() != 3) throw std::invalid_argument("frame type must be 3 chars");
  ByteWriter w;
  w.raw(type);
  w.u8('F');
  w.u32(static_cast<std::uint32_t>(8 + body.size()));
  w.raw(body);
  return w.take();
}

Frame parse_frame(std::span<const std::uint8_t> wire) {
  if (wire.size() < 8) throw DecodeError("frame too short");
  Frame f;
  f.type.assign(wire.begin(), wire.begin() + 3);
  f.chunk = wire[3];
  ByteReader r(wire.subspan(4, 4));
  const std::uint32_t size = r.u32();
  if (size != wire.size()) throw DecodeError("frame size mismatch");
  f.body.assign(wire.begin() + 8, wire.end());
  return f;
}

}  // namespace opcua_study
