#include "opcua/encoding.hpp"

namespace opcua_study {

namespace {
// Variant type ids (OPC 10000-6 §5.1.2).
constexpr std::uint8_t kTypeBool = 1;
constexpr std::uint8_t kTypeInt32 = 6;
constexpr std::uint8_t kTypeUInt32 = 7;
constexpr std::uint8_t kTypeInt64 = 8;
constexpr std::uint8_t kTypeDouble = 11;
constexpr std::uint8_t kTypeString = 12;
constexpr std::uint8_t kTypeByteString = 15;
constexpr std::uint8_t kArrayFlag = 0x80;
}  // namespace

void UaWriter::string(const std::string& s) {
  w_.i32(static_cast<std::int32_t>(s.size()));
  w_.raw(s);
}

void UaWriter::byte_string(const Bytes& b) {
  w_.i32(static_cast<std::int32_t>(b.size()));
  w_.raw(b);
}

void UaWriter::node_id(const NodeId& id) {
  if (id.is_numeric()) {
    const std::uint32_t num = id.numeric();
    if (id.namespace_index == 0 && num <= 0xff) {
      w_.u8(0x00);  // two-byte form
      w_.u8(static_cast<std::uint8_t>(num));
    } else if (id.namespace_index <= 0xff && num <= 0xffff) {
      w_.u8(0x01);  // four-byte form
      w_.u8(static_cast<std::uint8_t>(id.namespace_index));
      w_.u16(static_cast<std::uint16_t>(num));
    } else {
      w_.u8(0x02);  // numeric form
      w_.u16(id.namespace_index);
      w_.u32(num);
    }
  } else {
    w_.u8(0x03);  // string form
    w_.u16(id.namespace_index);
    string(id.text());
  }
}

void UaWriter::expanded_node_id(const NodeId& id) { node_id(id); }

void UaWriter::qualified_name(const QualifiedName& qn) {
  w_.u16(qn.namespace_index);
  string(qn.name);
}

void UaWriter::localized_text(const LocalizedText& lt) {
  std::uint8_t mask = 0;
  if (!lt.locale.empty()) mask |= 0x01;
  if (!lt.text.empty()) mask |= 0x02;
  w_.u8(mask);
  if (mask & 0x01) string(lt.locale);
  if (mask & 0x02) string(lt.text);
}

void UaWriter::string_array(const std::vector<std::string>& items) {
  w_.i32(static_cast<std::int32_t>(items.size()));
  for (const auto& s : items) string(s);
}

void UaWriter::variant(const Variant& v) {
  struct Visitor {
    UaWriter& w;
    void operator()(std::monostate) { w.byte(0); }
    void operator()(bool b) {
      w.byte(kTypeBool);
      w.boolean(b);
    }
    void operator()(std::int32_t x) {
      w.byte(kTypeInt32);
      w.i32(x);
    }
    void operator()(std::uint32_t x) {
      w.byte(kTypeUInt32);
      w.u32(x);
    }
    void operator()(std::int64_t x) {
      w.byte(kTypeInt64);
      w.i64(x);
    }
    void operator()(double x) {
      w.byte(kTypeDouble);
      w.f64(x);
    }
    void operator()(const std::string& s) {
      w.byte(kTypeString);
      w.string(s);
    }
    void operator()(const Bytes& b) {
      w.byte(kTypeByteString);
      w.byte_string(b);
    }
    void operator()(const std::vector<std::string>& arr) {
      w.byte(kTypeString | kArrayFlag);
      w.string_array(arr);
    }
  };
  std::visit(Visitor{*this}, v.value);
}

void UaWriter::data_value(const DataValue& dv) {
  std::uint8_t mask = 0;
  if (!dv.value.empty()) mask |= 0x01;
  if (dv.status != StatusCode::Good) mask |= 0x02;
  if (dv.source_timestamp != 0) mask |= 0x04;
  w_.u8(mask);
  if (mask & 0x01) variant(dv.value);
  if (mask & 0x02) status(dv.status);
  if (mask & 0x04) datetime(dv.source_timestamp);
}

// -------------------------------------------------------------- UaReader ----

std::string UaReader::string() {
  const std::int32_t len = r_.i32();
  if (len < 0) return {};
  return to_string(r_.view(static_cast<std::size_t>(len)));
}

Bytes UaReader::byte_string() {
  const std::int32_t len = r_.i32();
  if (len < 0) return {};
  return r_.raw(static_cast<std::size_t>(len));
}

NodeId UaReader::node_id() {
  const std::uint8_t form = r_.u8() & 0x3f;  // mask namespace-uri/server-index flags
  switch (form) {
    case 0x00: return NodeId(0, r_.u8());
    case 0x01: {
      const std::uint8_t ns = r_.u8();
      return NodeId(ns, r_.u16());
    }
    case 0x02: {
      const std::uint16_t ns = r_.u16();
      return NodeId(ns, r_.u32());
    }
    case 0x03: {
      const std::uint16_t ns = r_.u16();
      return NodeId(ns, string());
    }
    default: throw DecodeError("unsupported NodeId form " + std::to_string(form));
  }
}

NodeId UaReader::expanded_node_id() { return node_id(); }

QualifiedName UaReader::qualified_name() {
  QualifiedName qn;
  qn.namespace_index = r_.u16();
  qn.name = string();
  return qn;
}

LocalizedText UaReader::localized_text() {
  LocalizedText lt;
  const std::uint8_t mask = r_.u8();
  if (mask & 0x01) lt.locale = string();
  if (mask & 0x02) lt.text = string();
  return lt;
}

std::vector<std::string> UaReader::string_array() {
  const std::int32_t len = r_.i32();
  if (len < 0) return {};
  if (static_cast<std::size_t>(len) > r_.remaining()) throw DecodeError("array too long");
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(len));
  for (std::int32_t i = 0; i < len; ++i) out.push_back(string());
  return out;
}

Variant UaReader::variant() {
  const std::uint8_t mask = r_.u8();
  if (mask == 0) return Variant{};
  const std::uint8_t type = mask & 0x3f;
  const bool is_array = mask & kArrayFlag;
  if (is_array) {
    if (type != kTypeString) throw DecodeError("unsupported array variant type");
    return Variant{string_array()};
  }
  switch (type) {
    case kTypeBool: return Variant{boolean()};
    case kTypeInt32: return Variant{i32()};
    case kTypeUInt32: return Variant{u32()};
    case kTypeInt64: return Variant{i64()};
    case kTypeDouble: return Variant{f64()};
    case kTypeString: return Variant{string()};
    case kTypeByteString: return Variant{byte_string()};
    default: throw DecodeError("unsupported variant type " + std::to_string(type));
  }
}

DataValue UaReader::data_value() {
  DataValue dv;
  const std::uint8_t mask = r_.u8();
  if (mask & 0x01) dv.value = variant();
  if (mask & 0x02) dv.status = status();
  if (mask & 0x04) dv.source_timestamp = datetime();
  return dv;
}

}  // namespace opcua_study
