// OPC UA client — the scanner's protocol engine (the gopcua/zgrab2
// counterpart of the paper).
//
// Drives one connection through HEL/ACK, OpenSecureChannel (optionally
// with the scanner's self-signed certificate), GetEndpoints/FindServers,
// session establishment and address-space reads. All results are returned
// as status codes + data, never exceptions, because for a scanner every
// failure mode is a *measurement*, not an error.
#pragma once

#include <optional>

#include "crypto/x509.hpp"
#include "opcua/messages.hpp"
#include "opcua/secureconv.hpp"
#include "opcua/transport.hpp"

namespace opcua_study {

struct ClientConfig {
  std::string application_uri = "urn:opcua-study:scanner";
  /// The paper advertises research intent + contact info here (§A.2).
  std::string application_name =
      "OPC UA security study scanner - contact research@example.org";
  Bytes certificate_der;        // self-signed scanner certificate
  std::optional<RsaPrivateKey> private_key;
};

class Client {
 public:
  Client(ClientConfig config, MessageTransport& transport, Rng rng);

  /// HEL → ACK.
  StatusCode hello(const std::string& endpoint_url);

  /// OPN. For policies other than None, `server_cert_der` must hold the
  /// server certificate from an endpoint description and the client must
  /// carry a certificate + key.
  StatusCode open_channel(SecurityPolicy policy, MessageSecurityMode mode,
                          const Bytes& server_cert_der = {});

  StatusCode get_endpoints(const std::string& url, std::vector<EndpointDescription>& out);
  StatusCode find_servers(const std::string& url, std::vector<ApplicationDescription>& out);

  struct SessionInfo {
    Bytes server_certificate;
    /// Verified proof-of-possession signature (CreateSessionResponse).
    bool server_signature_valid = false;
  };
  StatusCode create_session(SessionInfo* info = nullptr);
  StatusCode activate_session_anonymous();
  StatusCode activate_session_username(const std::string& user, const std::string& password);
  StatusCode close_session();

  StatusCode browse(const NodeId& node, std::vector<ReferenceDescription>& out,
                    std::uint32_t max_refs_per_node = 0);
  StatusCode read(const NodeId& node, AttributeId attribute, DataValue& out);
  /// Write a Value attribute (NEVER used by the scanner — §A.1; provided for
  /// operator tooling and attacker-capability demonstrations).
  StatusCode write_value(const NodeId& node, Variant value, StatusCode& node_status);
  /// Call a method with the given inputs.
  StatusCode call_method(const NodeId& object, const NodeId& method,
                         std::vector<Variant> inputs, StatusCode& method_status);
  /// Convenience: read + unwrap a string-array Value (NamespaceArray).
  StatusCode read_string_array(const NodeId& node, std::vector<std::string>& out);

  void close_channel();

  bool channel_open() const { return channel_open_; }
  SecurityPolicy channel_policy() const { return policy_; }
  MessageSecurityMode channel_mode() const { return mode_; }
  /// Status carried by the last transport-level ERR frame, if any.
  std::optional<StatusCode> last_transport_error() const { return transport_error_; }

 private:
  template <typename Request, typename Response>
  StatusCode call(const Request& req, Response& resp);
  Bytes secure_request(std::span<const std::uint8_t> packed);

  ClientConfig config_;
  MessageTransport& transport_;
  Rng rng_;

  bool hello_done_ = false;
  bool channel_open_ = false;
  SecurityPolicy policy_ = SecurityPolicy::None;
  MessageSecurityMode mode_ = MessageSecurityMode::None;
  std::uint32_t channel_id_ = 0;
  std::uint32_t token_id_ = 0;
  std::uint32_t seq_ = 1;
  std::uint32_t request_handle_ = 1;
  Bytes client_nonce_;
  Bytes server_nonce_;
  DerivedKeys client_keys_;
  DerivedKeys server_keys_;
  std::optional<Certificate> server_cert_;
  NodeId auth_token_;
  std::optional<StatusCode> transport_error_;
};

}  // namespace opcua_study
