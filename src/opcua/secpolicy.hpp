// Security policies and modes — the direct encoding of the paper's Table 1.
//
// A security *mode* switches signing/encryption on or off; a security
// *policy* pins the primitives. The paper's central assessment is whether
// deployments offer secure modes, avoid deprecated policies (the SHA-1
// family, deprecated 2017), and present certificates that actually match
// the announced policy (Fig. 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hash.hpp"

namespace opcua_study {

enum class MessageSecurityMode : std::uint32_t {
  Invalid = 0,
  None = 1,
  Sign = 2,
  SignAndEncrypt = 3,
};

std::string security_mode_name(MessageSecurityMode mode);
/// Paper's ordering: None < Sign < SignAndEncrypt.
int security_mode_rank(MessageSecurityMode mode);

enum class SecurityPolicy {
  None,                 // N
  Basic128Rsa15,        // D1 (deprecated 2017, SHA-1)
  Basic256,             // D2 (deprecated 2017, SHA-1)
  Aes128Sha256RsaOaep,  // S1
  Basic256Sha256,       // S2 (recommended)
  Aes256Sha256RsaPss,   // S3
};

inline constexpr SecurityPolicy kAllPolicies[] = {
    SecurityPolicy::None,           SecurityPolicy::Basic128Rsa15,
    SecurityPolicy::Basic256,       SecurityPolicy::Aes128Sha256RsaOaep,
    SecurityPolicy::Basic256Sha256, SecurityPolicy::Aes256Sha256RsaPss,
};

enum class AsymmetricEncryption { none, pkcs1v15, oaep_sha1, oaep_sha256 };
enum class AsymmetricSignature { none, pkcs1v15_sha1, pkcs1v15_sha256, pss_sha256 };

struct SecurityPolicyInfo {
  SecurityPolicy id;
  std::string_view uri;         // http://opcfoundation.org/UA/SecurityPolicy#...
  std::string_view name;        // Basic256Sha256 ...
  std::string_view short_name;  // N / D1 / D2 / S1 / S2 / S3 (paper's Table 1)
  /// Paper's strength order: N(0) < D1 < D2 < S1 < S2 < S3(5).
  int rank;
  bool deprecated;  // D1, D2 (SHA-1-based, deprecated 2017)
  bool secure;      // S1, S2, S3

  // Asymmetric (OpenSecureChannel) primitives.
  AsymmetricSignature asym_signature;
  AsymmetricEncryption asym_encryption;
  // Certificate requirements (Table 1: "Cert. Hash", "Key Len.").
  HashAlgorithm min_cert_hash;  // weakest allowed signature hash
  HashAlgorithm max_cert_hash;  // strongest allowed signature hash
  std::size_t min_key_bits;
  std::size_t max_key_bits;
  // Symmetric channel primitives.
  HashAlgorithm kdf_hash;       // P_SHA1 or P_SHA256
  HashAlgorithm sym_mac_hash;   // HMAC hash for Sign
  std::size_t sym_sig_key_bytes;
  std::size_t sym_enc_key_bytes;  // AES key size
  std::size_t nonce_bytes;
};

const SecurityPolicyInfo& policy_info(SecurityPolicy policy);
std::optional<SecurityPolicy> policy_from_uri(std::string_view uri);
std::optional<SecurityPolicy> policy_from_short_name(std::string_view short_name);

/// How a certificate's actual primitives relate to a policy's requirements.
/// The paper's Fig. 4: 409 servers announce Basic256Sha256 but deliver
/// "too weak" certificates; 75 announce Basic128Rsa15 with "too strong" ones.
enum class CertConformance { conformant, too_weak, too_strong };

/// Classify (signature hash, key bits) against `policy`. Weakness dominates:
/// a certificate that is simultaneously too weak in one dimension and too
/// strong in another counts as too weak (it fails to deliver the announced
/// security level, which is the paper's criterion).
CertConformance classify_certificate(SecurityPolicy policy, HashAlgorithm cert_hash,
                                     std::size_t key_bits);

std::string conformance_name(CertConformance c);

/// Strength order used for both cert hashes and the weak/strong decision.
int hash_rank(HashAlgorithm alg);  // MD5(0) < SHA-1(1) < SHA-256(2)

}  // namespace opcua_study
