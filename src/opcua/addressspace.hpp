// OPC UA address space: nodes, references, namespaces, access levels.
//
// §5.4 of the paper traverses the address spaces of anonymously accessible
// servers, reads every node's user access rights, and classifies systems as
// production/test via the NamespaceArray. This model carries exactly the
// attributes that analysis needs.
#pragma once

#include <map>
#include <vector>

#include "opcua/types.hpp"

namespace opcua_study {

struct Node {
  NodeId id;
  NodeClass node_class = NodeClass::Object;
  QualifiedName browse_name;
  LocalizedText display_name;
  Variant value;
  /// What the server would allow any user (maximum rights).
  std::uint8_t access_level = access_level::kCurrentRead;
  /// What the *anonymous* user gets — the paper's Fig. 7 dimension.
  std::uint8_t user_access_level = access_level::kCurrentRead;
  bool executable = false;
  bool user_executable = false;
};

struct Reference {
  NodeId reference_type = node_ids::kOrganizes;
  NodeId target;
  bool forward = true;
};

class AddressSpace {
 public:
  /// Creates the ns0 skeleton: Root → Objects → Server with NamespaceArray,
  /// ServerArray and ServerStatus/SoftwareVersion.
  AddressSpace();

  /// Register a namespace URI, returning its index.
  std::uint16_t add_namespace(const std::string& uri);
  const std::vector<std::string>& namespaces() const { return namespaces_; }

  Node& add_object(const NodeId& id, const NodeId& parent, const std::string& name);
  Node& add_variable(const NodeId& id, const NodeId& parent, const std::string& name,
                     Variant value, std::uint8_t user_access);
  Node& add_method(const NodeId& id, const NodeId& parent, const std::string& name,
                   bool user_executable);

  const Node* find(const NodeId& id) const;
  Node* find_mutable(const NodeId& id);
  const std::vector<Reference>& references_of(const NodeId& id) const;

  /// Attribute read as seen by the anonymous user; NamespaceArray and
  /// SoftwareVersion are materialized on demand.
  DataValue read_attribute(const NodeId& id, AttributeId attribute) const;

  void set_software_version(std::string version) { software_version_ = std::move(version); }
  const std::string& software_version() const { return software_version_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t count_of_class(NodeClass cls) const;

  const std::map<NodeId, Node>& all_nodes() const { return nodes_; }

 private:
  void link(const NodeId& parent, const NodeId& child, const NodeId& ref_type);

  std::map<NodeId, Node> nodes_;
  std::map<NodeId, std::vector<Reference>> references_;
  std::vector<std::string> namespaces_;
  std::string software_version_ = "1.0.0";
};

}  // namespace opcua_study
