#include "opcua/client.hpp"

namespace opcua_study {

Client::Client(ClientConfig config, MessageTransport& transport, Rng rng)
    : config_(std::move(config)), transport_(transport), rng_(std::move(rng)) {}

StatusCode Client::hello(const std::string& endpoint_url) {
  HelloMessage hello;
  hello.endpoint_url = endpoint_url;
  Bytes response;
  try {
    response = transport_.roundtrip(frame_message("HEL", hello.encode()));
    const Frame frame = parse_frame(response);
    if (frame.type == "ERR") {
      const ErrorMessage err = ErrorMessage::decode(frame.body);
      transport_error_ = err.error;
      return err.error;
    }
    if (frame.type != "ACK") return StatusCode::BadTcpMessageTypeInvalid;
    AcknowledgeMessage::decode(frame.body);
  } catch (const DecodeError&) {
    return StatusCode::BadCommunicationError;
  }
  hello_done_ = true;
  return StatusCode::Good;
}

StatusCode Client::open_channel(SecurityPolicy policy, MessageSecurityMode mode,
                                const Bytes& server_cert_der) {
  if (!hello_done_) return StatusCode::BadConnectionRejected;
  const SecurityPolicyInfo& info = policy_info(policy);

  server_cert_.reset();
  if (policy != SecurityPolicy::None) {
    if (!config_.private_key || config_.certificate_der.empty()) {
      return StatusCode::BadSecurityChecksFailed;
    }
    try {
      server_cert_ = x509_parse(server_cert_der);
    } catch (const DecodeError&) {
      return StatusCode::BadCertificateInvalid;
    }
  }

  OpenSecureChannelRequest req;
  req.header.request_handle = request_handle_++;
  req.security_mode = mode;
  client_nonce_ = policy == SecurityPolicy::None ? Bytes{} : rng_.bytes(info.nonce_bytes);
  req.client_nonce = client_nonce_;

  OpnSecurity sec;
  sec.policy = policy;
  if (policy != SecurityPolicy::None) {
    sec.local_private = &*config_.private_key;
    sec.local_cert_der = config_.certificate_der;
    sec.remote_public = &server_cert_->public_key;
    sec.remote_cert_thumbprint = x509_thumbprint(server_cert_der);
  }

  Bytes response;
  try {
    const Bytes wire =
        build_opn(0, sec, SequenceHeader{seq_++, req.header.request_handle}, pack_service(req), rng_);
    response = transport_.roundtrip(wire);
    const Frame frame = parse_frame(response);
    if (frame.type == "ERR") {
      const ErrorMessage err = ErrorMessage::decode(frame.body);
      transport_error_ = err.error;
      return err.error;
    }
    // Server→client OPN is encrypted with *our* public key.
    const RsaPrivateKey* decrypt_key =
        policy == SecurityPolicy::None ? nullptr : &*config_.private_key;
    const OpnParsed parsed = parse_opn(response, decrypt_key);
    const OpenSecureChannelResponse resp = unpack_service<OpenSecureChannelResponse>(parsed.body);
    if (is_bad(resp.header.service_result)) return resp.header.service_result;
    channel_id_ = resp.channel_id;
    token_id_ = resp.token_id;
    server_nonce_ = resp.server_nonce;
    if (policy != SecurityPolicy::None) {
      client_keys_ = derive_keys(policy, server_nonce_, client_nonce_);
      server_keys_ = derive_keys(policy, client_nonce_, server_nonce_);
    }
  } catch (const DecodeError&) {
    return StatusCode::BadSecurityChecksFailed;
  }
  channel_open_ = true;
  policy_ = policy;
  mode_ = mode;
  return StatusCode::Good;
}

Bytes Client::secure_request(std::span<const std::uint8_t> packed) {
  return build_msg("MSG", channel_id_, token_id_, SequenceHeader{seq_, seq_}, packed, policy_,
                   mode_, client_keys_);
}

template <typename Request, typename Response>
StatusCode Client::call(const Request& req, Response& resp) {
  if (!channel_open_) return StatusCode::BadSecureChannelIdInvalid;
  try {
    ++seq_;
    const Bytes wire = secure_request(pack_service(req));
    const Bytes response = transport_.roundtrip(wire);
    const Frame frame = parse_frame(response);
    if (frame.type == "ERR") {
      const ErrorMessage err = ErrorMessage::decode(frame.body);
      transport_error_ = err.error;
      channel_open_ = false;
      return err.error;
    }
    const MsgParsed parsed = parse_msg(response, policy_, mode_, server_keys_);
    const std::uint32_t type_id = peek_type_id(parsed.body);
    if (type_id == type_ids::kServiceFault) {
      const ServiceFault f = unpack_service<ServiceFault>(parsed.body);
      return f.header.service_result;
    }
    resp = unpack_service<Response>(parsed.body);
    return resp.header.service_result;
  } catch (const DecodeError&) {
    return StatusCode::BadCommunicationError;
  }
}

StatusCode Client::get_endpoints(const std::string& url, std::vector<EndpointDescription>& out) {
  GetEndpointsRequest req;
  req.header.request_handle = request_handle_++;
  req.endpoint_url = url;
  GetEndpointsResponse resp;
  const StatusCode status = call(req, resp);
  if (is_good(status)) out = std::move(resp.endpoints);
  return status;
}

StatusCode Client::find_servers(const std::string& url, std::vector<ApplicationDescription>& out) {
  FindServersRequest req;
  req.header.request_handle = request_handle_++;
  req.endpoint_url = url;
  FindServersResponse resp;
  const StatusCode status = call(req, resp);
  if (is_good(status)) out = std::move(resp.servers);
  return status;
}

StatusCode Client::create_session(SessionInfo* info) {
  CreateSessionRequest req;
  req.header.request_handle = request_handle_++;
  req.client_description.application_uri = config_.application_uri;
  req.client_description.application_name = {"en", config_.application_name};
  req.client_description.application_type = ApplicationType::Client;
  req.session_name = "study-session";
  req.client_nonce = rng_.bytes(32);
  req.client_certificate = config_.certificate_der;
  CreateSessionResponse resp;
  const StatusCode status = call(req, resp);
  if (is_bad(status)) return status;
  auth_token_ = resp.authentication_token;
  if (info != nullptr) {
    info->server_certificate = resp.server_certificate;
    info->server_signature_valid = false;
    if (!resp.server_signature.signature.empty() && !resp.server_certificate.empty()) {
      try {
        const Certificate cert = x509_parse(resp.server_certificate);
        Bytes signed_data = req.client_certificate;
        signed_data.insert(signed_data.end(), req.client_nonce.begin(), req.client_nonce.end());
        const SecurityPolicyInfo& pinfo = policy_info(policy_);
        switch (pinfo.asym_signature) {
          case AsymmetricSignature::pkcs1v15_sha1:
            info->server_signature_valid = rsa_pkcs1v15_verify(
                cert.public_key, HashAlgorithm::sha1, signed_data, resp.server_signature.signature);
            break;
          case AsymmetricSignature::pkcs1v15_sha256:
            info->server_signature_valid =
                rsa_pkcs1v15_verify(cert.public_key, HashAlgorithm::sha256, signed_data,
                                    resp.server_signature.signature);
            break;
          case AsymmetricSignature::pss_sha256:
            info->server_signature_valid = rsa_pss_verify(
                cert.public_key, HashAlgorithm::sha256, signed_data, resp.server_signature.signature);
            break;
          case AsymmetricSignature::none: break;
        }
      } catch (const DecodeError&) {
        info->server_signature_valid = false;
      }
    }
  }
  return status;
}

StatusCode Client::activate_session_anonymous() {
  ActivateSessionRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  req.user_identity_token.kind = UserTokenType::Anonymous;
  req.user_identity_token.policy_id = "anonymous";
  ActivateSessionResponse resp;
  return call(req, resp);
}

StatusCode Client::activate_session_username(const std::string& user,
                                             const std::string& password) {
  ActivateSessionRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  req.user_identity_token.kind = UserTokenType::UserName;
  req.user_identity_token.policy_id = "credentials";
  req.user_identity_token.user_name = user;
  req.user_identity_token.password = to_bytes(password);
  ActivateSessionResponse resp;
  return call(req, resp);
}

StatusCode Client::close_session() {
  CloseSessionRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  CloseSessionResponse resp;
  return call(req, resp);
}

StatusCode Client::browse(const NodeId& node, std::vector<ReferenceDescription>& out,
                          std::uint32_t max_refs_per_node) {
  BrowseRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  req.requested_max_references_per_node = max_refs_per_node;
  BrowseDescription desc;
  desc.node_id = node;
  req.nodes_to_browse.push_back(desc);
  BrowseResponse resp;
  StatusCode status = call(req, resp);
  if (is_bad(status)) return status;
  if (resp.results.empty()) return StatusCode::BadUnexpectedError;
  out = resp.results[0].references;
  Bytes continuation = resp.results[0].continuation_point;
  while (!continuation.empty()) {
    BrowseNextRequest next_req;
    next_req.header.request_handle = request_handle_++;
    next_req.header.authentication_token = auth_token_;
    next_req.continuation_points.push_back(continuation);
    BrowseNextResponse next_resp;
    status = call(next_req, next_resp);
    if (is_bad(status)) return status;
    if (next_resp.results.empty()) break;
    out.insert(out.end(), next_resp.results[0].references.begin(),
               next_resp.results[0].references.end());
    continuation = next_resp.results[0].continuation_point;
  }
  return resp.results[0].status;
}

StatusCode Client::read(const NodeId& node, AttributeId attribute, DataValue& out) {
  ReadRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  ReadValueId rv;
  rv.node_id = node;
  rv.attribute_id = attribute;
  req.nodes_to_read.push_back(rv);
  ReadResponse resp;
  const StatusCode status = call(req, resp);
  if (is_bad(status)) return status;
  if (resp.results.empty()) return StatusCode::BadUnexpectedError;
  out = resp.results[0];
  return status;
}

StatusCode Client::write_value(const NodeId& node, Variant value, StatusCode& node_status) {
  WriteRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  WriteValue wv;
  wv.node_id = node;
  wv.value.value = std::move(value);
  req.nodes_to_write.push_back(std::move(wv));
  WriteResponse resp;
  const StatusCode status = call(req, resp);
  if (is_bad(status)) return status;
  node_status = resp.results.empty() ? StatusCode::BadUnexpectedError : resp.results[0];
  return status;
}

StatusCode Client::call_method(const NodeId& object, const NodeId& method,
                               std::vector<Variant> inputs, StatusCode& method_status) {
  CallRequest req;
  req.header.request_handle = request_handle_++;
  req.header.authentication_token = auth_token_;
  CallMethodRequest cm;
  cm.object_id = object;
  cm.method_id = method;
  cm.input_arguments = std::move(inputs);
  req.methods_to_call.push_back(std::move(cm));
  CallResponse resp;
  const StatusCode status = call(req, resp);
  if (is_bad(status)) return status;
  method_status = resp.results.empty() ? StatusCode::BadUnexpectedError : resp.results[0].status;
  return status;
}

StatusCode Client::read_string_array(const NodeId& node, std::vector<std::string>& out) {
  DataValue dv;
  const StatusCode status = read(node, AttributeId::Value, dv);
  if (is_bad(status)) return status;
  if (is_bad(dv.status)) return dv.status;
  if (!dv.value.is<std::vector<std::string>>()) return StatusCode::BadDecodingError;
  out = dv.value.as<std::vector<std::string>>();
  return StatusCode::Good;
}

void Client::close_channel() {
  if (!channel_open_) return;
  CloseSecureChannelRequest req;
  req.header.request_handle = request_handle_++;
  try {
    const Bytes wire = build_msg("CLO", channel_id_, token_id_, SequenceHeader{++seq_, seq_},
                                 pack_service(req), policy_, mode_, client_keys_);
    transport_.send_oneway(wire);
  } catch (const DecodeError&) {
    // Closing a broken channel is best-effort.
  }
  channel_open_ = false;
}

}  // namespace opcua_study
