// OPC UA service messages (OPC 10000-4) with binary encode/decode.
//
// The subset implemented is exactly the paper's scan footprint:
// FindServers + GetEndpoints (discovery), OpenSecureChannel (channel
// assessment), CreateSession/ActivateSession (authorization assessment),
// Browse/BrowseNext/Read (address-space traversal of §5.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opcua/encoding.hpp"
#include "opcua/secpolicy.hpp"
#include "opcua/types.hpp"

namespace opcua_study {

// Binary-encoding type ids (OPC 10000-6 Annex A).
namespace type_ids {
inline constexpr std::uint32_t kServiceFault = 397;
inline constexpr std::uint32_t kFindServersRequest = 422;
inline constexpr std::uint32_t kFindServersResponse = 425;
inline constexpr std::uint32_t kGetEndpointsRequest = 428;
inline constexpr std::uint32_t kGetEndpointsResponse = 431;
inline constexpr std::uint32_t kOpenSecureChannelRequest = 446;
inline constexpr std::uint32_t kOpenSecureChannelResponse = 449;
inline constexpr std::uint32_t kCloseSecureChannelRequest = 452;
inline constexpr std::uint32_t kCreateSessionRequest = 461;
inline constexpr std::uint32_t kCreateSessionResponse = 464;
inline constexpr std::uint32_t kActivateSessionRequest = 467;
inline constexpr std::uint32_t kActivateSessionResponse = 470;
inline constexpr std::uint32_t kCloseSessionRequest = 473;
inline constexpr std::uint32_t kCloseSessionResponse = 476;
inline constexpr std::uint32_t kBrowseRequest = 527;
inline constexpr std::uint32_t kBrowseResponse = 530;
inline constexpr std::uint32_t kBrowseNextRequest = 533;
inline constexpr std::uint32_t kBrowseNextResponse = 536;
inline constexpr std::uint32_t kReadRequest = 631;
inline constexpr std::uint32_t kReadResponse = 634;
inline constexpr std::uint32_t kWriteRequest = 673;
inline constexpr std::uint32_t kWriteResponse = 676;
inline constexpr std::uint32_t kCallRequest = 712;
inline constexpr std::uint32_t kCallResponse = 715;
inline constexpr std::uint32_t kAnonymousIdentityToken = 321;
inline constexpr std::uint32_t kUserNameIdentityToken = 324;
inline constexpr std::uint32_t kX509IdentityToken = 327;
inline constexpr std::uint32_t kIssuedIdentityToken = 940;
}  // namespace type_ids

struct RequestHeader {
  NodeId authentication_token;
  std::int64_t timestamp = 0;
  std::uint32_t request_handle = 0;
  std::uint32_t timeout_hint = 0;

  void encode(UaWriter& w) const;
  static RequestHeader decode(UaReader& r);
};

struct ResponseHeader {
  std::int64_t timestamp = 0;
  std::uint32_t request_handle = 0;
  StatusCode service_result = StatusCode::Good;

  void encode(UaWriter& w) const;
  static ResponseHeader decode(UaReader& r);
};

enum class ApplicationType : std::uint32_t {
  Server = 0,
  Client = 1,
  ClientAndServer = 2,
  DiscoveryServer = 3,
};

struct ApplicationDescription {
  std::string application_uri;
  std::string product_uri;
  LocalizedText application_name;
  ApplicationType application_type = ApplicationType::Server;
  std::vector<std::string> discovery_urls;

  void encode(UaWriter& w) const;
  static ApplicationDescription decode(UaReader& r);
};

enum class UserTokenType : std::uint32_t {
  Anonymous = 0,
  UserName = 1,
  Certificate = 2,
  IssuedToken = 3,
};

std::string user_token_type_name(UserTokenType t);

struct UserTokenPolicy {
  std::string policy_id;
  UserTokenType token_type = UserTokenType::Anonymous;
  std::string security_policy_uri;

  void encode(UaWriter& w) const;
  static UserTokenPolicy decode(UaReader& r);
};

struct EndpointDescription {
  std::string endpoint_url;
  ApplicationDescription server;
  Bytes server_certificate;
  MessageSecurityMode security_mode = MessageSecurityMode::None;
  std::string security_policy_uri;
  std::vector<UserTokenPolicy> user_identity_tokens;
  std::string transport_profile_uri =
      "http://opcfoundation.org/UA-Profile/Transport/uatcp-uasc-uabinary";
  std::uint8_t security_level = 0;

  void encode(UaWriter& w) const;
  static EndpointDescription decode(UaReader& r);
};

struct SignatureData {
  std::string algorithm;
  Bytes signature;

  void encode(UaWriter& w) const;
  static SignatureData decode(UaReader& r);
};

/// UserIdentityToken extension object (anonymous / username / certificate /
/// issued — the four columns of the paper's Table 2).
struct UserIdentityToken {
  UserTokenType kind = UserTokenType::Anonymous;
  std::string policy_id;
  std::string user_name;      // UserName only
  Bytes password;             // UserName only
  Bytes certificate_data;     // Certificate only
  Bytes token_data;           // IssuedToken only

  void encode(UaWriter& w) const;
  static UserIdentityToken decode(UaReader& r);
};

// ------------------------------------------------------------- services ----

struct OpenSecureChannelRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kOpenSecureChannelRequest;
  RequestHeader header;
  std::uint32_t client_protocol_version = 0;
  std::uint32_t request_type = 0;  // 0 = issue, 1 = renew
  MessageSecurityMode security_mode = MessageSecurityMode::None;
  Bytes client_nonce;
  std::uint32_t requested_lifetime_ms = 3600000;

  void encode(UaWriter& w) const;
  static OpenSecureChannelRequest decode(UaReader& r);
};

struct OpenSecureChannelResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kOpenSecureChannelResponse;
  ResponseHeader header;
  std::uint32_t server_protocol_version = 0;
  std::uint32_t channel_id = 0;
  std::uint32_t token_id = 0;
  std::int64_t created_at = 0;
  std::uint32_t revised_lifetime_ms = 3600000;
  Bytes server_nonce;

  void encode(UaWriter& w) const;
  static OpenSecureChannelResponse decode(UaReader& r);
};

struct CloseSecureChannelRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kCloseSecureChannelRequest;
  RequestHeader header;

  void encode(UaWriter& w) const;
  static CloseSecureChannelRequest decode(UaReader& r);
};

struct GetEndpointsRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kGetEndpointsRequest;
  RequestHeader header;
  std::string endpoint_url;

  void encode(UaWriter& w) const;
  static GetEndpointsRequest decode(UaReader& r);
};

struct GetEndpointsResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kGetEndpointsResponse;
  ResponseHeader header;
  std::vector<EndpointDescription> endpoints;

  void encode(UaWriter& w) const;
  static GetEndpointsResponse decode(UaReader& r);
};

struct FindServersRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kFindServersRequest;
  RequestHeader header;
  std::string endpoint_url;

  void encode(UaWriter& w) const;
  static FindServersRequest decode(UaReader& r);
};

struct FindServersResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kFindServersResponse;
  ResponseHeader header;
  std::vector<ApplicationDescription> servers;

  void encode(UaWriter& w) const;
  static FindServersResponse decode(UaReader& r);
};

struct CreateSessionRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kCreateSessionRequest;
  RequestHeader header;
  ApplicationDescription client_description;
  std::string endpoint_url;
  std::string session_name;
  Bytes client_nonce;
  Bytes client_certificate;
  double requested_session_timeout_ms = 60000;

  void encode(UaWriter& w) const;
  static CreateSessionRequest decode(UaReader& r);
};

struct CreateSessionResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kCreateSessionResponse;
  ResponseHeader header;
  NodeId session_id;
  NodeId authentication_token;
  double revised_session_timeout_ms = 60000;
  Bytes server_nonce;
  Bytes server_certificate;
  std::vector<EndpointDescription> server_endpoints;
  SignatureData server_signature;

  void encode(UaWriter& w) const;
  static CreateSessionResponse decode(UaReader& r);
};

struct ActivateSessionRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kActivateSessionRequest;
  RequestHeader header;
  SignatureData client_signature;
  UserIdentityToken user_identity_token;

  void encode(UaWriter& w) const;
  static ActivateSessionRequest decode(UaReader& r);
};

struct ActivateSessionResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kActivateSessionResponse;
  ResponseHeader header;
  Bytes server_nonce;

  void encode(UaWriter& w) const;
  static ActivateSessionResponse decode(UaReader& r);
};

struct CloseSessionRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kCloseSessionRequest;
  RequestHeader header;
  bool delete_subscriptions = true;

  void encode(UaWriter& w) const;
  static CloseSessionRequest decode(UaReader& r);
};

struct CloseSessionResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kCloseSessionResponse;
  ResponseHeader header;

  void encode(UaWriter& w) const;
  static CloseSessionResponse decode(UaReader& r);
};

enum class BrowseDirection : std::uint32_t { Forward = 0, Inverse = 1, Both = 2 };

struct BrowseDescription {
  NodeId node_id;
  BrowseDirection direction = BrowseDirection::Forward;
  NodeId reference_type_id = node_ids::kHierarchicalReferences;
  bool include_subtypes = true;
  std::uint32_t node_class_mask = 0;  // 0 = all
  std::uint32_t result_mask = 0x3f;

  void encode(UaWriter& w) const;
  static BrowseDescription decode(UaReader& r);
};

struct ReferenceDescription {
  NodeId reference_type_id;
  bool is_forward = true;
  NodeId node_id;
  QualifiedName browse_name;
  LocalizedText display_name;
  NodeClass node_class = NodeClass::Unspecified;
  NodeId type_definition;

  void encode(UaWriter& w) const;
  static ReferenceDescription decode(UaReader& r);
};

struct BrowseResult {
  StatusCode status = StatusCode::Good;
  Bytes continuation_point;
  std::vector<ReferenceDescription> references;

  void encode(UaWriter& w) const;
  static BrowseResult decode(UaReader& r);
};

struct BrowseRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kBrowseRequest;
  RequestHeader header;
  std::uint32_t requested_max_references_per_node = 0;
  std::vector<BrowseDescription> nodes_to_browse;

  void encode(UaWriter& w) const;
  static BrowseRequest decode(UaReader& r);
};

struct BrowseResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kBrowseResponse;
  ResponseHeader header;
  std::vector<BrowseResult> results;

  void encode(UaWriter& w) const;
  static BrowseResponse decode(UaReader& r);
};

struct BrowseNextRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kBrowseNextRequest;
  RequestHeader header;
  bool release_continuation_points = false;
  std::vector<Bytes> continuation_points;

  void encode(UaWriter& w) const;
  static BrowseNextRequest decode(UaReader& r);
};

struct BrowseNextResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kBrowseNextResponse;
  ResponseHeader header;
  std::vector<BrowseResult> results;

  void encode(UaWriter& w) const;
  static BrowseNextResponse decode(UaReader& r);
};

struct ReadValueId {
  NodeId node_id;
  AttributeId attribute_id = AttributeId::Value;

  void encode(UaWriter& w) const;
  static ReadValueId decode(UaReader& r);
};

struct ReadRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kReadRequest;
  RequestHeader header;
  double max_age = 0;
  std::uint32_t timestamps_to_return = 0;
  std::vector<ReadValueId> nodes_to_read;

  void encode(UaWriter& w) const;
  static ReadRequest decode(UaReader& r);
};

struct ReadResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kReadResponse;
  ResponseHeader header;
  std::vector<DataValue> results;

  void encode(UaWriter& w) const;
  static ReadResponse decode(UaReader& r);
};

struct WriteValue {
  NodeId node_id;
  AttributeId attribute_id = AttributeId::Value;
  DataValue value;

  void encode(UaWriter& w) const;
  static WriteValue decode(UaReader& r);
};

/// Write service — the operation the paper's scanner deliberately never
/// issues (§A.1) but that 33 % of accessible hosts would accept from an
/// anonymous attacker (Fig. 7).
struct WriteRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kWriteRequest;
  RequestHeader header;
  std::vector<WriteValue> nodes_to_write;

  void encode(UaWriter& w) const;
  static WriteRequest decode(UaReader& r);
};

struct WriteResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kWriteResponse;
  ResponseHeader header;
  std::vector<StatusCode> results;

  void encode(UaWriter& w) const;
  static WriteResponse decode(UaReader& r);
};

struct CallMethodRequest {
  NodeId object_id;
  NodeId method_id;
  std::vector<Variant> input_arguments;

  void encode(UaWriter& w) const;
  static CallMethodRequest decode(UaReader& r);
};

struct CallMethodResult {
  StatusCode status = StatusCode::Good;
  std::vector<Variant> output_arguments;

  void encode(UaWriter& w) const;
  static CallMethodResult decode(UaReader& r);
};

/// Call service — method execution (61 % of accessible hosts expose > 86 %
/// of their functions to anonymous users, Fig. 7).
struct CallRequest {
  static constexpr std::uint32_t kTypeId = type_ids::kCallRequest;
  RequestHeader header;
  std::vector<CallMethodRequest> methods_to_call;

  void encode(UaWriter& w) const;
  static CallRequest decode(UaReader& r);
};

struct CallResponse {
  static constexpr std::uint32_t kTypeId = type_ids::kCallResponse;
  ResponseHeader header;
  std::vector<CallMethodResult> results;

  void encode(UaWriter& w) const;
  static CallResponse decode(UaReader& r);
};

struct ServiceFault {
  static constexpr std::uint32_t kTypeId = type_ids::kServiceFault;
  ResponseHeader header;

  void encode(UaWriter& w) const;
  static ServiceFault decode(UaReader& r);
};

// ------------------------------------------------------------- envelope ----

/// Encode `msg` prefixed with its binary-encoding NodeId.
template <typename T>
Bytes pack_service(const T& msg) {
  UaWriter w;
  w.node_id(NodeId(0, T::kTypeId));
  msg.encode(w);
  return w.take();
}

/// Read the type id of a packed service body (without consuming it).
std::uint32_t peek_type_id(std::span<const std::uint8_t> packed);

/// Decode a packed service body, checking its type id.
template <typename T>
T unpack_service(std::span<const std::uint8_t> packed) {
  UaReader r(packed);
  const NodeId type_node = r.node_id();
  if (!type_node.is_numeric() || type_node.numeric() != T::kTypeId) {
    throw DecodeError("unexpected service type id");
  }
  return T::decode(r);
}

}  // namespace opcua_study
