#include "opcua/secpolicy.hpp"

#include <array>
#include <stdexcept>

namespace opcua_study {

std::string security_mode_name(MessageSecurityMode mode) {
  switch (mode) {
    case MessageSecurityMode::Invalid: return "Invalid";
    case MessageSecurityMode::None: return "None";
    case MessageSecurityMode::Sign: return "Sign";
    case MessageSecurityMode::SignAndEncrypt: return "SignAndEncrypt";
  }
  return "?";
}

int security_mode_rank(MessageSecurityMode mode) {
  switch (mode) {
    case MessageSecurityMode::None: return 0;
    case MessageSecurityMode::Sign: return 1;
    case MessageSecurityMode::SignAndEncrypt: return 2;
    case MessageSecurityMode::Invalid: return -1;
  }
  return -1;
}

namespace {

constexpr std::array<SecurityPolicyInfo, 6> kPolicyTable = {{
    {SecurityPolicy::None, "http://opcfoundation.org/UA/SecurityPolicy#None", "None", "N",
     /*rank=*/0, /*deprecated=*/false, /*secure=*/false, AsymmetricSignature::none,
     AsymmetricEncryption::none, HashAlgorithm::md5, HashAlgorithm::sha256, 0, 0,
     HashAlgorithm::sha1, HashAlgorithm::sha1, 0, 0, 0},
    // Basic128Rsa15: SHA-1 signatures, PKCS#1 v1.5 key transport,
    // certificates SHA-1 with 1024-2048 bit keys. Deprecated 2017.
    {SecurityPolicy::Basic128Rsa15, "http://opcfoundation.org/UA/SecurityPolicy#Basic128Rsa15",
     "Basic128Rsa15", "D1", 1, true, false, AsymmetricSignature::pkcs1v15_sha1,
     AsymmetricEncryption::pkcs1v15, HashAlgorithm::sha1, HashAlgorithm::sha1, 1024, 2048,
     HashAlgorithm::sha1, HashAlgorithm::sha1, 16, 16, 16},
    // Basic256: SHA-1 signatures, OAEP(SHA-1), certs SHA-1/SHA-256 with
    // 1024-2048 bit keys. Deprecated 2017.
    {SecurityPolicy::Basic256, "http://opcfoundation.org/UA/SecurityPolicy#Basic256", "Basic256",
     "D2", 2, true, false, AsymmetricSignature::pkcs1v15_sha1, AsymmetricEncryption::oaep_sha1,
     HashAlgorithm::sha1, HashAlgorithm::sha256, 1024, 2048, HashAlgorithm::sha1,
     HashAlgorithm::sha1, 24, 32, 32},
    {SecurityPolicy::Aes128Sha256RsaOaep,
     "http://opcfoundation.org/UA/SecurityPolicy#Aes128_Sha256_RsaOaep", "Aes128_Sha256_RsaOaep",
     "S1", 3, false, true, AsymmetricSignature::pkcs1v15_sha256, AsymmetricEncryption::oaep_sha1,
     HashAlgorithm::sha256, HashAlgorithm::sha256, 2048, 4096, HashAlgorithm::sha256,
     HashAlgorithm::sha256, 32, 16, 32},
    {SecurityPolicy::Basic256Sha256, "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256",
     "Basic256Sha256", "S2", 4, false, true, AsymmetricSignature::pkcs1v15_sha256,
     AsymmetricEncryption::oaep_sha1, HashAlgorithm::sha256, HashAlgorithm::sha256, 2048, 4096,
     HashAlgorithm::sha256, HashAlgorithm::sha256, 32, 32, 32},
    {SecurityPolicy::Aes256Sha256RsaPss,
     "http://opcfoundation.org/UA/SecurityPolicy#Aes256_Sha256_RsaPss", "Aes256_Sha256_RsaPss",
     "S3", 5, false, true, AsymmetricSignature::pss_sha256, AsymmetricEncryption::oaep_sha256,
     HashAlgorithm::sha256, HashAlgorithm::sha256, 2048, 4096, HashAlgorithm::sha256,
     HashAlgorithm::sha256, 32, 32, 32},
}};

}  // namespace

const SecurityPolicyInfo& policy_info(SecurityPolicy policy) {
  for (const auto& info : kPolicyTable) {
    if (info.id == policy) return info;
  }
  throw std::logic_error("unknown security policy");
}

std::optional<SecurityPolicy> policy_from_uri(std::string_view uri) {
  for (const auto& info : kPolicyTable) {
    if (info.uri == uri) return info.id;
  }
  return std::nullopt;
}

std::optional<SecurityPolicy> policy_from_short_name(std::string_view short_name) {
  for (const auto& info : kPolicyTable) {
    if (info.short_name == short_name) return info.id;
  }
  return std::nullopt;
}

int hash_rank(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::md5: return 0;
    case HashAlgorithm::sha1: return 1;
    case HashAlgorithm::sha256: return 2;
  }
  return -1;
}

CertConformance classify_certificate(SecurityPolicy policy, HashAlgorithm cert_hash,
                                     std::size_t key_bits) {
  const SecurityPolicyInfo& info = policy_info(policy);
  if (policy == SecurityPolicy::None) return CertConformance::conformant;  // no requirements
  const bool hash_weak = hash_rank(cert_hash) < hash_rank(info.min_cert_hash);
  const bool key_weak = key_bits < info.min_key_bits;
  if (hash_weak || key_weak) return CertConformance::too_weak;
  const bool hash_strong = hash_rank(cert_hash) > hash_rank(info.max_cert_hash);
  const bool key_strong = key_bits > info.max_key_bits;
  if (hash_strong || key_strong) return CertConformance::too_strong;
  return CertConformance::conformant;
}

std::string conformance_name(CertConformance c) {
  switch (c) {
    case CertConformance::conformant: return "conformant";
    case CertConformance::too_weak: return "too weak";
    case CertConformance::too_strong: return "too strong";
  }
  return "?";
}

}  // namespace opcua_study
