#include "opcua/server.hpp"

#include "crypto/x509.hpp"
#include "util/date.hpp"

namespace opcua_study {

Server::Server(ServerConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  if (!config_.address_space) config_.address_space = std::make_shared<AddressSpace>();
  config_.address_space->set_software_version(config_.identity.software_version);
}

ApplicationDescription Server::application_description() const {
  ApplicationDescription app;
  app.application_uri = config_.identity.application_uri;
  app.product_uri = config_.identity.product_uri;
  app.application_name = {"en", config_.identity.application_name};
  app.application_type = config_.identity.application_type;
  for (const auto& ep : config_.endpoints) app.discovery_urls.push_back(ep.url);
  return app;
}

std::vector<EndpointDescription> Server::endpoint_descriptions() const {
  std::vector<EndpointDescription> out;
  const ApplicationDescription app = application_description();
  for (const auto& ep : config_.endpoints) {
    EndpointDescription desc;
    desc.endpoint_url = ep.url;
    desc.server = app;
    if (ep.certificate_index >= 0 &&
        static_cast<std::size_t>(ep.certificate_index) < config_.certificates.size()) {
      desc.server_certificate = config_.certificates[static_cast<std::size_t>(ep.certificate_index)];
    }
    desc.security_mode = ep.mode;
    const SecurityPolicyInfo& info = policy_info(ep.policy);
    desc.security_policy_uri = std::string(info.uri);
    desc.security_level = static_cast<std::uint8_t>(
        info.rank * 3 + security_mode_rank(ep.mode));
    for (UserTokenType t : ep.token_types) {
      UserTokenPolicy token;
      token.policy_id = user_token_type_name(t);
      token.token_type = t;
      desc.user_identity_tokens.push_back(std::move(token));
    }
    out.push_back(std::move(desc));
  }
  // Discovery servers additionally announce endpoints of other hosts.
  out.insert(out.end(), config_.foreign_endpoints.begin(), config_.foreign_endpoints.end());
  return out;
}

std::unique_ptr<ServerConnection> Server::accept() {
  return std::make_unique<ServerConnection>(*this,
                                            Rng(seed_).child("conn-" + std::to_string(next_channel_id_)));
}

// --------------------------------------------------------------------------

ServerConnection::ServerConnection(Server& server, Rng rng)
    : server_(server), rng_(std::move(rng)) {}

Bytes ServerConnection::error_frame(StatusCode code, const std::string& reason) {
  closed_ = true;
  ErrorMessage err;
  err.error = code;
  err.reason = reason;
  return frame_message("ERR", err.encode());
}

Bytes ServerConnection::on_frame(std::span<const std::uint8_t> wire) {
  if (closed_) return {};
  Frame frame;
  try {
    frame = parse_frame(wire);
  } catch (const DecodeError&) {
    return error_frame(StatusCode::BadTcpMessageTypeInvalid, "malformed frame");
  }
  try {
    if (frame.type == "HEL") return handle_hello(frame);
    if (!hello_done_) {
      return error_frame(StatusCode::BadTcpMessageTypeInvalid, "expected HEL");
    }
    if (frame.type == "OPN") return handle_opn(wire);
    if (frame.type == "MSG") return handle_msg(wire);
    if (frame.type == "CLO") {
      closed_ = true;
      return {};
    }
    return error_frame(StatusCode::BadTcpMessageTypeInvalid, "unknown frame type " + frame.type);
  } catch (const DecodeError& e) {
    return error_frame(StatusCode::BadSecurityChecksFailed, e.what());
  }
}

Bytes ServerConnection::handle_hello(const Frame& frame) {
  HelloMessage hello = HelloMessage::decode(frame.body);
  (void)hello;
  hello_done_ = true;
  AcknowledgeMessage ack;
  return frame_message("ACK", ack.encode());
}

Bytes ServerConnection::handle_opn(std::span<const std::uint8_t> wire) {
  // The policy URI is in the clear; decryption requires the private key of
  // the certificate the client selected, so try each configured key.
  OpnParsed parsed;
  bool ok = false;
  std::string last_error = "no private key configured";
  if (server_.config_.private_keys.empty()) {
    parsed = parse_opn(wire, nullptr);
    ok = true;
  } else {
    for (const auto& key : server_.config_.private_keys) {
      try {
        parsed = parse_opn(wire, &key);
        ok = true;
        break;
      } catch (const DecodeError& e) {
        last_error = e.what();
      }
    }
  }
  if (!ok) return error_frame(StatusCode::BadSecurityChecksFailed, last_error);

  OpenSecureChannelRequest req = unpack_service<OpenSecureChannelRequest>(parsed.body);

  int endpoint_index = -1;
  for (std::size_t i = 0; i < server_.config_.endpoints.size(); ++i) {
    const auto& ep = server_.config_.endpoints[i];
    if (ep.policy == parsed.policy && ep.mode == req.security_mode) {
      endpoint_index = static_cast<int>(i);
      break;
    }
  }

  if (parsed.policy != SecurityPolicy::None) {
    if (endpoint_index < 0) {
      return error_frame(StatusCode::BadSecurityPolicyRejected, "no endpoint for policy");
    }
    // Client certificate trust decision. The paper's scanner presents a
    // self-signed certificate; servers validating against a trust list
    // abort the channel here ("certificate not accepted", Fig. 6).
    if (!server_.config_.trust_all_client_certs) {
      return error_frame(StatusCode::BadSecurityChecksFailed,
                         "client certificate not trusted");
    }
    const Certificate client_cert = x509_parse(parsed.sender_cert_der);
    client_public_key_ = client_cert.public_key;
    client_cert_der_ = parsed.sender_cert_der;
  } else if (req.security_mode != MessageSecurityMode::None) {
    return error_frame(StatusCode::BadSecurityModeRejected, "policy None requires mode None");
  }

  channel_open_ = true;
  channel_id_ = server_.next_channel_id_++;
  token_id_ = channel_id_ * 1000 + 1;
  channel_policy_ = parsed.policy;
  channel_mode_ = req.security_mode;
  channel_endpoint_ = endpoint_index;

  const SecurityPolicyInfo& info = policy_info(parsed.policy);
  Bytes server_nonce;
  if (parsed.policy != SecurityPolicy::None) {
    server_nonce = rng_.bytes(info.nonce_bytes);
    client_keys_ = derive_keys(parsed.policy, server_nonce, req.client_nonce);
    server_keys_ = derive_keys(parsed.policy, req.client_nonce, server_nonce);
  }

  OpenSecureChannelResponse resp;
  resp.header.request_handle = req.header.request_handle;
  resp.header.service_result = StatusCode::Good;
  resp.channel_id = channel_id_;
  resp.token_id = token_id_;
  resp.revised_lifetime_ms = req.requested_lifetime_ms;
  resp.server_nonce = server_nonce;
  const Bytes packed = pack_service(resp);

  OpnSecurity sec;
  sec.policy = parsed.policy;
  if (parsed.policy != SecurityPolicy::None) {
    const int cert_index =
        server_.config_.endpoints[static_cast<std::size_t>(endpoint_index)].certificate_index;
    sec.local_private = &server_.config_.private_keys[static_cast<std::size_t>(cert_index)];
    sec.local_cert_der = server_.config_.certificates[static_cast<std::size_t>(cert_index)];
    sec.remote_public = &*client_public_key_;
    sec.remote_cert_thumbprint = x509_thumbprint(client_cert_der_);
  }
  return build_opn(channel_id_, sec, SequenceHeader{seq_++, parsed.seq.request_id}, packed, rng_);
}

Bytes ServerConnection::secure_response(std::span<const std::uint8_t> packed) {
  return build_msg("MSG", channel_id_, token_id_, SequenceHeader{seq_++, last_request_id_}, packed,
                   channel_policy_, channel_mode_, server_keys_);
}

Bytes ServerConnection::handle_msg(std::span<const std::uint8_t> wire) {
  if (!channel_open_) {
    return error_frame(StatusCode::BadSecureChannelIdInvalid, "no open channel");
  }
  MsgParsed parsed = parse_msg(wire, channel_policy_, channel_mode_, client_keys_);
  if (parsed.channel_id != channel_id_) {
    return error_frame(StatusCode::BadSecureChannelIdInvalid, "bad channel id");
  }
  last_request_id_ = parsed.seq.request_id;
  return dispatch_service(parsed.body);
}

Bytes ServerConnection::fault(StatusCode code, std::uint32_t request_handle) {
  ServiceFault f;
  f.header.request_handle = request_handle;
  f.header.service_result = code;
  return secure_response(pack_service(f));
}

Bytes ServerConnection::dispatch_service(std::span<const std::uint8_t> body) {
  const std::uint32_t type_id = peek_type_id(body);
  switch (type_id) {
    case type_ids::kGetEndpointsRequest:
      return handle_get_endpoints(unpack_service<GetEndpointsRequest>(body));
    case type_ids::kFindServersRequest:
      return handle_find_servers(unpack_service<FindServersRequest>(body));
    case type_ids::kCreateSessionRequest:
      return handle_create_session(unpack_service<CreateSessionRequest>(body));
    case type_ids::kActivateSessionRequest:
      return handle_activate_session(unpack_service<ActivateSessionRequest>(body));
    case type_ids::kCloseSessionRequest:
      return handle_close_session(unpack_service<CloseSessionRequest>(body));
    case type_ids::kBrowseRequest: return handle_browse(unpack_service<BrowseRequest>(body));
    case type_ids::kBrowseNextRequest:
      return handle_browse_next(unpack_service<BrowseNextRequest>(body));
    case type_ids::kReadRequest: return handle_read(unpack_service<ReadRequest>(body));
    case type_ids::kWriteRequest: return handle_write(unpack_service<WriteRequest>(body));
    case type_ids::kCallRequest: return handle_call(unpack_service<CallRequest>(body));
    default: {
      UaReader r(body);
      r.node_id();
      return fault(StatusCode::BadServiceUnsupported, 0);
    }
  }
}

Bytes ServerConnection::handle_get_endpoints(const GetEndpointsRequest& req) {
  GetEndpointsResponse resp;
  resp.header.request_handle = req.header.request_handle;
  resp.endpoints = server_.endpoint_descriptions();
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_find_servers(const FindServersRequest& req) {
  FindServersResponse resp;
  resp.header.request_handle = req.header.request_handle;
  resp.servers.push_back(server_.application_description());
  for (const auto& known : server_.config_.known_servers) resp.servers.push_back(known);
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_create_session(const CreateSessionRequest& req) {
  if (channel_endpoint_ < 0 && channel_policy_ == SecurityPolicy::None) {
    // Discovery-only channel: sessions need an endpoint configured for
    // (None, None); otherwise the server only serves GetEndpoints here.
    bool has_none_endpoint = false;
    for (const auto& ep : server_.config_.endpoints) {
      if (ep.policy == SecurityPolicy::None) has_none_endpoint = true;
    }
    if (!has_none_endpoint) {
      return fault(StatusCode::BadSecurityPolicyRejected, req.header.request_handle);
    }
    channel_endpoint_ = 0;
    for (std::size_t i = 0; i < server_.config_.endpoints.size(); ++i) {
      if (server_.config_.endpoints[i].policy == SecurityPolicy::None) {
        channel_endpoint_ = static_cast<int>(i);
        break;
      }
    }
  }
  if (server_.config_.reject_all_sessions) {
    return fault(StatusCode::BadInternalError, req.header.request_handle);
  }

  session_created_ = true;
  session_activated_ = false;
  session_auth_token_ = NodeId(1, 0x53000000u + server_.next_session_id_);
  const NodeId session_id = NodeId(1, server_.next_session_id_++);
  session_client_nonce_ = req.client_nonce;

  CreateSessionResponse resp;
  resp.header.request_handle = req.header.request_handle;
  resp.session_id = session_id;
  resp.authentication_token = session_auth_token_;
  resp.server_nonce = rng_.bytes(32);
  resp.server_endpoints = server_.endpoint_descriptions();

  const auto& ep = server_.config_.endpoints[static_cast<std::size_t>(channel_endpoint_)];
  if (ep.certificate_index >= 0 &&
      static_cast<std::size_t>(ep.certificate_index) < server_.config_.certificates.size()) {
    resp.server_certificate =
        server_.config_.certificates[static_cast<std::size_t>(ep.certificate_index)];
    if (channel_policy_ != SecurityPolicy::None && !req.client_certificate.empty()) {
      // Proof of private-key possession: sign clientCert || clientNonce.
      Bytes to_sign = req.client_certificate;
      to_sign.insert(to_sign.end(), req.client_nonce.begin(), req.client_nonce.end());
      const auto& key =
          server_.config_.private_keys[static_cast<std::size_t>(ep.certificate_index)];
      const SecurityPolicyInfo& info = policy_info(channel_policy_);
      if (info.asym_signature == AsymmetricSignature::pkcs1v15_sha1) {
        resp.server_signature.algorithm = "http://www.w3.org/2000/09/xmldsig#rsa-sha1";
        resp.server_signature.signature = rsa_pkcs1v15_sign(key, HashAlgorithm::sha1, to_sign);
      } else if (info.asym_signature == AsymmetricSignature::pkcs1v15_sha256) {
        resp.server_signature.algorithm = "http://www.w3.org/2001/04/xmldsig-more#rsa-sha256";
        resp.server_signature.signature = rsa_pkcs1v15_sign(key, HashAlgorithm::sha256, to_sign);
      } else if (info.asym_signature == AsymmetricSignature::pss_sha256) {
        resp.server_signature.algorithm =
            "http://opcfoundation.org/UA/security/rsa-pss-sha2-256";
        resp.server_signature.signature = rsa_pss_sign(key, HashAlgorithm::sha256, to_sign, rng_);
      }
    }
  }
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_activate_session(const ActivateSessionRequest& req) {
  if (!session_created_ || req.header.authentication_token != session_auth_token_) {
    return fault(StatusCode::BadSessionIdInvalid, req.header.request_handle);
  }
  const auto& ep = server_.config_.endpoints[static_cast<std::size_t>(
      channel_endpoint_ < 0 ? 0 : channel_endpoint_)];
  const UserTokenType kind = req.user_identity_token.kind;
  bool offered = false;
  for (UserTokenType t : ep.token_types) {
    if (t == kind) offered = true;
  }
  if (!offered) {
    return fault(StatusCode::BadIdentityTokenRejected, req.header.request_handle);
  }
  switch (kind) {
    case UserTokenType::Anonymous:
      if (server_.config_.reject_anonymous_sessions) {
        return fault(StatusCode::BadIdentityTokenRejected, req.header.request_handle);
      }
      break;
    case UserTokenType::UserName: {
      bool ok = false;
      for (const auto& cred : server_.config_.users) {
        if (cred.user == req.user_identity_token.user_name &&
            to_bytes(cred.password) == req.user_identity_token.password) {
          ok = true;
        }
      }
      if (!ok) return fault(StatusCode::BadUserAccessDenied, req.header.request_handle);
      break;
    }
    case UserTokenType::Certificate:
    case UserTokenType::IssuedToken:
      // The study's scanner never authenticates with these; reject like a
      // server with an empty trust list would.
      return fault(StatusCode::BadIdentityTokenRejected, req.header.request_handle);
  }
  session_activated_ = true;
  ActivateSessionResponse resp;
  resp.header.request_handle = req.header.request_handle;
  resp.server_nonce = rng_.bytes(32);
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_close_session(const CloseSessionRequest& req) {
  session_created_ = false;
  session_activated_ = false;
  CloseSessionResponse resp;
  resp.header.request_handle = req.header.request_handle;
  return secure_response(pack_service(resp));
}

BrowseResult ServerConnection::browse_one(const BrowseDescription& desc, std::uint32_t max_refs) {
  BrowseResult result;
  const AddressSpace& space = *server_.config_.address_space;
  if (space.find(desc.node_id) == nullptr) {
    result.status = StatusCode::BadNodeIdUnknown;
    return result;
  }
  std::vector<ReferenceDescription> refs;
  for (const Reference& ref : space.references_of(desc.node_id)) {
    if (desc.direction == BrowseDirection::Forward && !ref.forward) continue;
    const Node* target = space.find(ref.target);
    if (target == nullptr) continue;
    if (desc.node_class_mask != 0 &&
        (desc.node_class_mask & static_cast<std::uint32_t>(target->node_class)) == 0) {
      continue;
    }
    ReferenceDescription rd;
    rd.reference_type_id = ref.reference_type;
    rd.is_forward = ref.forward;
    rd.node_id = target->id;
    rd.browse_name = target->browse_name;
    rd.display_name = target->display_name;
    rd.node_class = target->node_class;
    refs.push_back(std::move(rd));
  }
  if (max_refs != 0 && refs.size() > max_refs) {
    std::vector<ReferenceDescription> rest(refs.begin() + max_refs, refs.end());
    refs.resize(max_refs);
    const std::uint32_t cp_id = next_continuation_++;
    continuations_[cp_id] = std::move(rest);
    UaWriter cp;
    cp.u32(cp_id);
    result.continuation_point = cp.take();
  }
  result.references = std::move(refs);
  return result;
}

Bytes ServerConnection::handle_browse(const BrowseRequest& req) {
  if (!session_activated_) {
    return fault(StatusCode::BadSessionNotActivated, req.header.request_handle);
  }
  BrowseResponse resp;
  resp.header.request_handle = req.header.request_handle;
  if (req.nodes_to_browse.empty()) {
    resp.header.service_result = StatusCode::BadNothingToDo;
  }
  for (const auto& desc : req.nodes_to_browse) {
    resp.results.push_back(browse_one(desc, req.requested_max_references_per_node));
  }
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_browse_next(const BrowseNextRequest& req) {
  if (!session_activated_) {
    return fault(StatusCode::BadSessionNotActivated, req.header.request_handle);
  }
  BrowseNextResponse resp;
  resp.header.request_handle = req.header.request_handle;
  for (const Bytes& cp : req.continuation_points) {
    BrowseResult result;
    if (cp.size() != 4) {
      result.status = StatusCode::BadContinuationPointInvalid;
      resp.results.push_back(std::move(result));
      continue;
    }
    UaReader r(cp);
    const std::uint32_t cp_id = r.u32();
    const auto it = continuations_.find(cp_id);
    if (it == continuations_.end()) {
      result.status = StatusCode::BadContinuationPointInvalid;
    } else if (req.release_continuation_points) {
      continuations_.erase(it);
    } else {
      result.references = std::move(it->second);
      continuations_.erase(it);
    }
    resp.results.push_back(std::move(result));
  }
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_read(const ReadRequest& req) {
  if (!session_activated_) {
    return fault(StatusCode::BadSessionNotActivated, req.header.request_handle);
  }
  ReadResponse resp;
  resp.header.request_handle = req.header.request_handle;
  for (const auto& rv : req.nodes_to_read) {
    resp.results.push_back(server_.config_.address_space->read_attribute(rv.node_id, rv.attribute_id));
  }
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_write(const WriteRequest& req) {
  if (!session_activated_) {
    return fault(StatusCode::BadSessionNotActivated, req.header.request_handle);
  }
  WriteResponse resp;
  resp.header.request_handle = req.header.request_handle;
  AddressSpace& space = *server_.config_.address_space;
  for (const auto& wv : req.nodes_to_write) {
    Node* node = space.find_mutable(wv.node_id);
    if (node == nullptr) {
      resp.results.push_back(StatusCode::BadNodeIdUnknown);
    } else if (wv.attribute_id != AttributeId::Value || node->node_class != NodeClass::Variable) {
      resp.results.push_back(StatusCode::BadAttributeIdInvalid);
    } else if ((node->user_access_level & access_level::kCurrentWrite) == 0) {
      // The anonymous user's rights gate the write — the capability the
      // paper measures via UserAccessLevel but never exercises.
      resp.results.push_back(StatusCode::BadNotWritable);
    } else {
      node->value = wv.value.value;
      resp.results.push_back(StatusCode::Good);
    }
  }
  return secure_response(pack_service(resp));
}

Bytes ServerConnection::handle_call(const CallRequest& req) {
  if (!session_activated_) {
    return fault(StatusCode::BadSessionNotActivated, req.header.request_handle);
  }
  CallResponse resp;
  resp.header.request_handle = req.header.request_handle;
  const AddressSpace& space = *server_.config_.address_space;
  for (const auto& call : req.methods_to_call) {
    CallMethodResult result;
    const Node* method = space.find(call.method_id);
    if (method == nullptr) {
      result.status = StatusCode::BadNodeIdUnknown;
    } else if (method->node_class != NodeClass::Method) {
      result.status = StatusCode::BadAttributeIdInvalid;
    } else if (!method->user_executable) {
      result.status = StatusCode::BadNotExecutable;
    } else {
      // Simulated execution: echo the inputs (enough to observe success).
      result.output_arguments = call.input_arguments;
    }
    resp.results.push_back(std::move(result));
  }
  return secure_response(pack_service(resp));
}

}  // namespace opcua_study
