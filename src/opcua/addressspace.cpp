#include "opcua/addressspace.hpp"

namespace opcua_study {

AddressSpace::AddressSpace() {
  namespaces_.push_back("http://opcfoundation.org/UA/");

  auto add_core = [this](const NodeId& id, NodeClass cls, const std::string& name) -> Node& {
    Node node;
    node.id = id;
    node.node_class = cls;
    node.browse_name = {0, name};
    node.display_name = {"", name};
    return nodes_.emplace(id, std::move(node)).first->second;
  };

  add_core(node_ids::kRootFolder, NodeClass::Object, "Root");
  add_core(node_ids::kObjectsFolder, NodeClass::Object, "Objects");
  add_core(node_ids::kServer, NodeClass::Object, "Server");
  add_core(node_ids::kNamespaceArray, NodeClass::Variable, "NamespaceArray");
  add_core(node_ids::kServerArray, NodeClass::Variable, "ServerArray");
  add_core(node_ids::kServerStatus, NodeClass::Variable, "ServerStatus");
  add_core(node_ids::kSoftwareVersion, NodeClass::Variable, "SoftwareVersion");

  link(node_ids::kRootFolder, node_ids::kObjectsFolder, node_ids::kOrganizes);
  link(node_ids::kObjectsFolder, node_ids::kServer, node_ids::kOrganizes);
  link(node_ids::kServer, node_ids::kNamespaceArray, node_ids::kHasComponent);
  link(node_ids::kServer, node_ids::kServerArray, node_ids::kHasComponent);
  link(node_ids::kServer, node_ids::kServerStatus, node_ids::kHasComponent);
  link(node_ids::kServerStatus, node_ids::kSoftwareVersion, node_ids::kHasComponent);
}

void AddressSpace::link(const NodeId& parent, const NodeId& child, const NodeId& ref_type) {
  references_[parent].push_back({ref_type, child, true});
}

std::uint16_t AddressSpace::add_namespace(const std::string& uri) {
  for (std::size_t i = 0; i < namespaces_.size(); ++i) {
    if (namespaces_[i] == uri) return static_cast<std::uint16_t>(i);
  }
  namespaces_.push_back(uri);
  return static_cast<std::uint16_t>(namespaces_.size() - 1);
}

Node& AddressSpace::add_object(const NodeId& id, const NodeId& parent, const std::string& name) {
  Node node;
  node.id = id;
  node.node_class = NodeClass::Object;
  node.browse_name = {id.namespace_index, name};
  node.display_name = {"", name};
  auto& stored = nodes_.emplace(id, std::move(node)).first->second;
  link(parent, id, node_ids::kOrganizes);
  return stored;
}

Node& AddressSpace::add_variable(const NodeId& id, const NodeId& parent, const std::string& name,
                                 Variant value, std::uint8_t user_access) {
  Node node;
  node.id = id;
  node.node_class = NodeClass::Variable;
  node.browse_name = {id.namespace_index, name};
  node.display_name = {"", name};
  node.value = std::move(value);
  node.access_level = access_level::kCurrentRead | access_level::kCurrentWrite;
  node.user_access_level = user_access;
  auto& stored = nodes_.emplace(id, std::move(node)).first->second;
  link(parent, id, node_ids::kHasComponent);
  return stored;
}

Node& AddressSpace::add_method(const NodeId& id, const NodeId& parent, const std::string& name,
                               bool user_executable) {
  Node node;
  node.id = id;
  node.node_class = NodeClass::Method;
  node.browse_name = {id.namespace_index, name};
  node.display_name = {"", name};
  node.executable = true;
  node.user_executable = user_executable;
  auto& stored = nodes_.emplace(id, std::move(node)).first->second;
  link(parent, id, node_ids::kHasComponent);
  return stored;
}

const Node* AddressSpace::find(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Node* AddressSpace::find_mutable(const NodeId& id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const std::vector<Reference>& AddressSpace::references_of(const NodeId& id) const {
  static const std::vector<Reference> kEmpty;
  const auto it = references_.find(id);
  return it == references_.end() ? kEmpty : it->second;
}

DataValue AddressSpace::read_attribute(const NodeId& id, AttributeId attribute) const {
  DataValue dv;
  const Node* node = find(id);
  if (node == nullptr) {
    dv.status = StatusCode::BadNodeIdUnknown;
    return dv;
  }
  switch (attribute) {
    case AttributeId::NodeId: dv.value = Variant{node->id.to_string()}; break;
    case AttributeId::NodeClass:
      dv.value = Variant{static_cast<std::uint32_t>(node->node_class)};
      break;
    case AttributeId::BrowseName: dv.value = Variant{node->browse_name.name}; break;
    case AttributeId::DisplayName: dv.value = Variant{node->display_name.text}; break;
    case AttributeId::Value:
      if (node->id == node_ids::kNamespaceArray) {
        dv.value = Variant{namespaces_};
      } else if (node->id == node_ids::kSoftwareVersion) {
        dv.value = Variant{software_version_};
      } else if (node->node_class != NodeClass::Variable) {
        dv.status = StatusCode::BadAttributeIdInvalid;
      } else if ((node->user_access_level & access_level::kCurrentRead) == 0) {
        dv.status = StatusCode::BadNotReadable;
      } else {
        dv.value = node->value;
      }
      break;
    case AttributeId::AccessLevel:
      if (node->node_class != NodeClass::Variable) {
        dv.status = StatusCode::BadAttributeIdInvalid;
      } else {
        dv.value = Variant{static_cast<std::uint32_t>(node->access_level)};
      }
      break;
    case AttributeId::UserAccessLevel:
      if (node->node_class != NodeClass::Variable) {
        dv.status = StatusCode::BadAttributeIdInvalid;
      } else {
        dv.value = Variant{static_cast<std::uint32_t>(node->user_access_level)};
      }
      break;
    case AttributeId::Executable:
      if (node->node_class != NodeClass::Method) {
        dv.status = StatusCode::BadAttributeIdInvalid;
      } else {
        dv.value = Variant{node->executable};
      }
      break;
    case AttributeId::UserExecutable:
      if (node->node_class != NodeClass::Method) {
        dv.status = StatusCode::BadAttributeIdInvalid;
      } else {
        dv.value = Variant{node->user_executable};
      }
      break;
    default: dv.status = StatusCode::BadAttributeIdInvalid; break;
  }
  return dv;
}

std::size_t AddressSpace::count_of_class(NodeClass cls) const {
  std::size_t n = 0;
  for (const auto& [id, node] : nodes_) {
    if (node.node_class == cls) ++n;
  }
  return n;
}

}  // namespace opcua_study
