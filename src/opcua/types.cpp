#include "opcua/types.hpp"

namespace opcua_study {

std::string NodeId::to_string() const {
  std::string out = "ns=" + std::to_string(namespace_index) + ";";
  if (is_numeric()) {
    out += "i=" + std::to_string(numeric());
  } else {
    out += "s=" + text();
  }
  return out;
}

std::string Variant::to_display_string() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return "(null)"; }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(std::int32_t v) const { return std::to_string(v); }
    std::string operator()(std::uint32_t v) const { return std::to_string(v); }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(const Bytes& v) const {
      return "bytes[" + std::to_string(v.size()) + "]";
    }
    std::string operator()(const std::vector<std::string>& v) const {
      std::string out = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out += ", ";
        out += v[i];
      }
      return out + "]";
    }
  };
  return std::visit(Visitor{}, value);
}

}  // namespace opcua_study
