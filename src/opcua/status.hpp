// OPC UA status codes (OPC 10000-4, subset used by this stack).
#pragma once

#include <cstdint>
#include <string>

namespace opcua_study {

enum class StatusCode : std::uint32_t {
  Good = 0x00000000,
  BadUnexpectedError = 0x80010000,
  BadInternalError = 0x80020000,
  BadTimeout = 0x800A0000,
  BadServiceUnsupported = 0x800B0000,
  BadCommunicationError = 0x80050000,
  BadEncodingError = 0x80060000,
  BadDecodingError = 0x80070000,
  BadEncodingLimitsExceeded = 0x80080000,
  BadRequestTooLarge = 0x80B80000,
  BadConnectionRejected = 0x80AC0000,
  BadSecureChannelIdInvalid = 0x80220000,
  BadSecurityChecksFailed = 0x80130000,
  BadCertificateInvalid = 0x80120000,
  BadCertificateUntrusted = 0x801A0000,
  BadCertificateUriInvalid = 0x80170000,
  BadSecurityModeRejected = 0x80E60000,
  BadSecurityPolicyRejected = 0x80550000,
  BadIdentityTokenInvalid = 0x80200000,
  BadIdentityTokenRejected = 0x80210000,
  BadUserAccessDenied = 0x801F0000,
  BadSessionIdInvalid = 0x80250000,
  BadSessionClosed = 0x80260000,
  BadSessionNotActivated = 0x80270000,
  BadTooManySessions = 0x80560000,
  BadNodeIdUnknown = 0x80340000,
  BadAttributeIdInvalid = 0x80350000,
  BadNotReadable = 0x803A0000,
  BadNotWritable = 0x803B0000,
  BadNotExecutable = 0x81C10000,
  BadContinuationPointInvalid = 0x804A0000,
  BadNothingToDo = 0x800F0000,
  BadTcpMessageTypeInvalid = 0x807E0000,
  BadTcpEndpointUrlInvalid = 0x80830000,
  BadRequestInterrupted = 0x80840000,
};

inline bool is_good(StatusCode code) {
  return (static_cast<std::uint32_t>(code) & 0x80000000u) == 0;
}
inline bool is_bad(StatusCode code) { return !is_good(code); }

std::string status_name(StatusCode code);

}  // namespace opcua_study
