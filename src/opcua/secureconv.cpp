#include "opcua/secureconv.hpp"

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "opcua/encoding.hpp"

namespace opcua_study {

DerivedKeys derive_keys(SecurityPolicy policy, std::span<const std::uint8_t> secret,
                        std::span<const std::uint8_t> seed) {
  const SecurityPolicyInfo& info = policy_info(policy);
  DerivedKeys keys;
  if (policy == SecurityPolicy::None) return keys;
  const std::size_t total = info.sym_sig_key_bytes + info.sym_enc_key_bytes + 16;
  const Bytes block = p_hash(info.kdf_hash, secret, seed, total);
  auto it = block.begin();
  keys.sig_key.assign(it, it + static_cast<std::ptrdiff_t>(info.sym_sig_key_bytes));
  it += static_cast<std::ptrdiff_t>(info.sym_sig_key_bytes);
  keys.enc_key.assign(it, it + static_cast<std::ptrdiff_t>(info.sym_enc_key_bytes));
  it += static_cast<std::ptrdiff_t>(info.sym_enc_key_bytes);
  keys.iv.assign(it, it + 16);
  return keys;
}

namespace {

Bytes asym_sign(const SecurityPolicyInfo& info, const RsaPrivateKey& key,
                std::span<const std::uint8_t> data, Rng& rng) {
  switch (info.asym_signature) {
    case AsymmetricSignature::pkcs1v15_sha1:
      return rsa_pkcs1v15_sign(key, HashAlgorithm::sha1, data);
    case AsymmetricSignature::pkcs1v15_sha256:
      return rsa_pkcs1v15_sign(key, HashAlgorithm::sha256, data);
    case AsymmetricSignature::pss_sha256:
      return rsa_pss_sign(key, HashAlgorithm::sha256, data, rng);
    case AsymmetricSignature::none: return {};
  }
  return {};
}

bool asym_verify(const SecurityPolicyInfo& info, const RsaPublicKey& key,
                 std::span<const std::uint8_t> data, std::span<const std::uint8_t> sig) {
  switch (info.asym_signature) {
    case AsymmetricSignature::pkcs1v15_sha1:
      return rsa_pkcs1v15_verify(key, HashAlgorithm::sha1, data, sig);
    case AsymmetricSignature::pkcs1v15_sha256:
      return rsa_pkcs1v15_verify(key, HashAlgorithm::sha256, data, sig);
    case AsymmetricSignature::pss_sha256:
      return rsa_pss_verify(key, HashAlgorithm::sha256, data, sig);
    case AsymmetricSignature::none: return true;
  }
  return false;
}

std::size_t asym_plain_block(const SecurityPolicyInfo& info, const RsaPublicKey& key) {
  switch (info.asym_encryption) {
    case AsymmetricEncryption::pkcs1v15: return rsa_pkcs1v15_max_plaintext(key);
    case AsymmetricEncryption::oaep_sha1: return rsa_oaep_max_plaintext(key, HashAlgorithm::sha1);
    case AsymmetricEncryption::oaep_sha256:
      return rsa_oaep_max_plaintext(key, HashAlgorithm::sha256);
    case AsymmetricEncryption::none: return 0;
  }
  return 0;
}

Bytes asym_encrypt_block(const SecurityPolicyInfo& info, const RsaPublicKey& key,
                         std::span<const std::uint8_t> block, Rng& rng) {
  switch (info.asym_encryption) {
    case AsymmetricEncryption::pkcs1v15: return rsa_pkcs1v15_encrypt(key, block, rng);
    case AsymmetricEncryption::oaep_sha1:
      return rsa_oaep_encrypt(key, HashAlgorithm::sha1, block, rng);
    case AsymmetricEncryption::oaep_sha256:
      return rsa_oaep_encrypt(key, HashAlgorithm::sha256, block, rng);
    case AsymmetricEncryption::none: return Bytes(block.begin(), block.end());
  }
  return {};
}

std::optional<Bytes> asym_decrypt_block(const SecurityPolicyInfo& info, const RsaPrivateKey& key,
                                        std::span<const std::uint8_t> block) {
  switch (info.asym_encryption) {
    case AsymmetricEncryption::pkcs1v15: return rsa_pkcs1v15_decrypt(key, block);
    case AsymmetricEncryption::oaep_sha1:
      return rsa_oaep_decrypt(key, HashAlgorithm::sha1, block);
    case AsymmetricEncryption::oaep_sha256:
      return rsa_oaep_decrypt(key, HashAlgorithm::sha256, block);
    case AsymmetricEncryption::none: return Bytes(block.begin(), block.end());
  }
  return std::nullopt;
}

void write_asym_security_header(UaWriter& w, const OpnSecurity& sec) {
  w.string(std::string(policy_info(sec.policy).uri));
  if (sec.policy == SecurityPolicy::None || sec.local_cert_der.empty()) {
    w.null_byte_string();
  } else {
    w.byte_string(sec.local_cert_der);
  }
  if (sec.policy == SecurityPolicy::None || sec.remote_cert_thumbprint.empty()) {
    w.null_byte_string();
  } else {
    w.byte_string(sec.remote_cert_thumbprint);
  }
}

}  // namespace

Bytes build_opn(std::uint32_t channel_id, const OpnSecurity& sec, SequenceHeader seq,
                std::span<const std::uint8_t> body, Rng& rng) {
  const SecurityPolicyInfo& info = policy_info(sec.policy);

  // Unencrypted prefix: channel id + asymmetric security header.
  UaWriter prefix_writer;
  prefix_writer.u32(channel_id);
  write_asym_security_header(prefix_writer, sec);
  const Bytes prefix = prefix_writer.take();

  // Plain region: sequence header + body.
  UaWriter plain_writer;
  plain_writer.u32(seq.sequence_number);
  plain_writer.u32(seq.request_id);
  plain_writer.base().raw(body);
  Bytes plain = plain_writer.take();

  if (sec.policy == SecurityPolicy::None) {
    Bytes full = prefix;
    full.insert(full.end(), plain.begin(), plain.end());
    return frame_message("OPN", full);
  }
  if (sec.local_private == nullptr || sec.remote_public == nullptr) {
    throw std::invalid_argument("secured OPN requires both keys");
  }

  const std::size_t sig_len = sec.local_private->modulus_bytes();
  const std::size_t plain_block = asym_plain_block(info, *sec.remote_public);
  const std::size_t cipher_block = sec.remote_public->modulus_bytes();
  // plain + padding + 1 (padding size byte) + signature must fill blocks.
  const std::size_t unpadded = plain.size() + 1 + sig_len;
  const std::size_t padding = (plain_block - unpadded % plain_block) % plain_block;
  const std::size_t n_blocks = (unpadded + padding) / plain_block;
  const std::size_t final_size = 8 + prefix.size() + n_blocks * cipher_block;

  // To-be-signed: header (with final size) + prefix + plain + padding + size byte.
  Bytes to_sign;
  {
    ByteWriter w;
    w.raw(std::string_view("OPN"));
    w.u8('F');
    w.u32(static_cast<std::uint32_t>(final_size));
    w.raw(prefix);
    w.raw(plain);
    for (std::size_t i = 0; i < padding; ++i) w.u8(static_cast<std::uint8_t>(padding));
    w.u8(static_cast<std::uint8_t>(padding));
    to_sign = w.take();
  }
  const Bytes signature = asym_sign(info, *sec.local_private, to_sign, rng);
  if (signature.size() != sig_len) throw std::logic_error("asym signature length mismatch");

  // Full plaintext to encrypt = plain + padding + size byte + signature.
  Bytes full_plain = plain;
  for (std::size_t i = 0; i < padding; ++i) full_plain.push_back(static_cast<std::uint8_t>(padding));
  full_plain.push_back(static_cast<std::uint8_t>(padding));
  full_plain.insert(full_plain.end(), signature.begin(), signature.end());

  Bytes out;
  out.reserve(final_size);
  {
    ByteWriter w;
    w.raw(std::string_view("OPN"));
    w.u8('F');
    w.u32(static_cast<std::uint32_t>(final_size));
    w.raw(prefix);
    out = w.take();
  }
  for (std::size_t off = 0; off < full_plain.size(); off += plain_block) {
    const std::size_t n = std::min(plain_block, full_plain.size() - off);
    const Bytes block = asym_encrypt_block(
        info, *sec.remote_public, std::span<const std::uint8_t>(full_plain).subspan(off, n), rng);
    out.insert(out.end(), block.begin(), block.end());
  }
  if (out.size() != final_size) throw std::logic_error("OPN size bookkeeping error");
  return out;
}

OpnParsed parse_opn(std::span<const std::uint8_t> wire, const RsaPrivateKey* local_private) {
  const Frame frame = parse_frame(wire);
  if (frame.type != "OPN") throw DecodeError("not an OPN frame");
  UaReader r(frame.body);
  OpnParsed out;
  out.channel_id = r.u32();
  out.policy_uri = r.string();
  const auto policy = policy_from_uri(out.policy_uri);
  if (!policy) throw DecodeError("unknown security policy URI: " + out.policy_uri);
  out.policy = *policy;
  out.sender_cert_der = r.byte_string();
  out.receiver_cert_thumbprint = r.byte_string();

  if (out.policy == SecurityPolicy::None) {
    out.seq.sequence_number = r.u32();
    out.seq.request_id = r.u32();
    out.body = r.base().raw(r.remaining());
    return out;
  }
  if (local_private == nullptr) throw DecodeError("secured OPN but no private key to decrypt");
  const SecurityPolicyInfo& info = policy_info(out.policy);

  const std::size_t cipher_block = local_private->modulus_bytes();
  const std::size_t encrypted_len = r.remaining();
  if (encrypted_len == 0 || encrypted_len % cipher_block != 0) {
    throw DecodeError("OPN encrypted region not block-aligned");
  }
  Bytes plain;
  for (std::size_t off = 0; off < encrypted_len; off += cipher_block) {
    const auto block = asym_decrypt_block(info, *local_private, r.base().view(cipher_block));
    if (!block) throw DecodeError("OPN block decryption failed");
    plain.insert(plain.end(), block->begin(), block->end());
  }

  const Certificate sender_cert = x509_parse(out.sender_cert_der);
  const std::size_t sig_len = sender_cert.public_key.modulus_bytes();
  if (plain.size() < sig_len + 9) throw DecodeError("OPN plaintext too short");
  const Bytes signature(plain.end() - static_cast<std::ptrdiff_t>(sig_len), plain.end());
  const std::size_t padding = plain[plain.size() - sig_len - 1];

  // Rebuild the signed view: wire prefix (header + channel id + security
  // header) + plaintext up to and including the padding-size byte.
  const std::size_t prefix_len = wire.size() - encrypted_len;
  Bytes signed_view(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(prefix_len));
  signed_view.insert(signed_view.end(), plain.begin(),
                     plain.end() - static_cast<std::ptrdiff_t>(sig_len));
  if (!asym_verify(info, sender_cert.public_key, signed_view, signature)) {
    throw DecodeError("OPN signature verification failed");
  }

  const std::size_t body_end = plain.size() - sig_len - 1 - padding;
  if (body_end < 8) throw DecodeError("OPN body underflow");
  for (std::size_t i = 0; i < padding; ++i) {
    if (plain[body_end + i] != padding) throw DecodeError("OPN padding corrupt");
  }
  UaReader pr(std::span<const std::uint8_t>(plain).first(body_end));
  out.seq.sequence_number = pr.u32();
  out.seq.request_id = pr.u32();
  out.body = pr.base().raw(pr.remaining());
  return out;
}

// ------------------------------------------------------------------ MSG ----

Bytes build_msg(std::string_view frame_type, std::uint32_t channel_id, std::uint32_t token_id,
                SequenceHeader seq, std::span<const std::uint8_t> body, SecurityPolicy policy,
                MessageSecurityMode mode, const DerivedKeys& sender_keys) {
  const SecurityPolicyInfo& info = policy_info(policy);
  UaWriter plain_writer;
  plain_writer.u32(seq.sequence_number);
  plain_writer.u32(seq.request_id);
  plain_writer.base().raw(body);
  Bytes plain = plain_writer.take();

  UaWriter prefix_writer;
  prefix_writer.u32(channel_id);
  prefix_writer.u32(token_id);
  const Bytes prefix = prefix_writer.take();

  if (mode == MessageSecurityMode::None || policy == SecurityPolicy::None) {
    Bytes full = prefix;
    full.insert(full.end(), plain.begin(), plain.end());
    return frame_message(frame_type, full);
  }

  const std::size_t sig_len = digest_size(info.sym_mac_hash);
  const bool encrypt = mode == MessageSecurityMode::SignAndEncrypt;
  std::size_t padding = 0;
  if (encrypt) {
    const std::size_t unpadded = plain.size() + 1 + sig_len;
    padding = (16 - unpadded % 16) % 16;
  }
  const std::size_t secured_len = plain.size() + (encrypt ? padding + 1 : 0) + sig_len;
  const std::size_t final_size = 8 + prefix.size() + secured_len;

  Bytes to_sign;
  {
    ByteWriter w;
    w.raw(frame_type);
    w.u8('F');
    w.u32(static_cast<std::uint32_t>(final_size));
    w.raw(prefix);
    w.raw(plain);
    if (encrypt) {
      for (std::size_t i = 0; i < padding; ++i) w.u8(static_cast<std::uint8_t>(padding));
      w.u8(static_cast<std::uint8_t>(padding));
    }
    to_sign = w.take();
  }
  const Bytes signature = hmac(info.sym_mac_hash, sender_keys.sig_key, to_sign);

  Bytes secured = plain;
  if (encrypt) {
    for (std::size_t i = 0; i < padding; ++i) secured.push_back(static_cast<std::uint8_t>(padding));
    secured.push_back(static_cast<std::uint8_t>(padding));
  }
  secured.insert(secured.end(), signature.begin(), signature.end());
  if (encrypt) secured = aes_cbc_encrypt(sender_keys.enc_key, sender_keys.iv, secured);

  ByteWriter w;
  w.raw(frame_type);
  w.u8('F');
  w.u32(static_cast<std::uint32_t>(final_size));
  w.raw(prefix);
  w.raw(secured);
  Bytes out = w.take();
  if (out.size() != final_size) throw std::logic_error("MSG size bookkeeping error");
  return out;
}

MsgParsed parse_msg(std::span<const std::uint8_t> wire, SecurityPolicy policy,
                    MessageSecurityMode mode, const DerivedKeys& sender_keys) {
  const Frame frame = parse_frame(wire);
  if (frame.type != "MSG" && frame.type != "CLO") throw DecodeError("not a MSG/CLO frame");
  const SecurityPolicyInfo& info = policy_info(policy);
  UaReader r(frame.body);
  MsgParsed out;
  out.channel_id = r.u32();
  out.token_id = r.u32();

  if (mode == MessageSecurityMode::None || policy == SecurityPolicy::None) {
    out.seq.sequence_number = r.u32();
    out.seq.request_id = r.u32();
    out.body = r.base().raw(r.remaining());
    return out;
  }

  const std::size_t sig_len = digest_size(info.sym_mac_hash);
  const bool encrypted = mode == MessageSecurityMode::SignAndEncrypt;
  Bytes secured = r.base().raw(r.remaining());
  if (encrypted) {
    if (secured.size() % 16 != 0) throw DecodeError("MSG ciphertext not block-aligned");
    secured = aes_cbc_decrypt(sender_keys.enc_key, sender_keys.iv, secured);
  }
  if (secured.size() < sig_len + 8) throw DecodeError("MSG too short");
  const Bytes signature(secured.end() - static_cast<std::ptrdiff_t>(sig_len), secured.end());

  const std::size_t prefix_len = 8 + 8;  // frame header + channel/token ids
  Bytes signed_view(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(prefix_len));
  signed_view.insert(signed_view.end(), secured.begin(),
                     secured.end() - static_cast<std::ptrdiff_t>(sig_len));
  if (hmac(info.sym_mac_hash, sender_keys.sig_key, signed_view) != signature) {
    throw DecodeError("MSG signature verification failed");
  }

  std::size_t body_end = secured.size() - sig_len;
  if (encrypted) {
    const std::size_t padding = secured[body_end - 1];
    if (body_end < padding + 1 + 8) throw DecodeError("MSG padding underflow");
    for (std::size_t i = 0; i < padding; ++i) {
      if (secured[body_end - 2 - i] != padding) throw DecodeError("MSG padding corrupt");
    }
    body_end -= padding + 1;
  }
  UaReader pr(std::span<const std::uint8_t>(secured).first(body_end));
  out.seq.sequence_number = pr.u32();
  out.seq.request_id = pr.u32();
  out.body = pr.base().raw(pr.remaining());
  return out;
}

}  // namespace opcua_study
