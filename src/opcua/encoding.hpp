// OPC UA binary encoding (OPC 10000-6 §5.2) over ByteWriter/ByteReader.
//
// Everything on the wire in this project goes through UaWriter/UaReader:
// the scanner's grabber, the simulated servers, and the secure-channel
// layer all speak this encoding, exactly like the paper's zgrab2 module
// spoke gopcua's.
#pragma once

#include "opcua/types.hpp"
#include "util/bytes.hpp"

namespace opcua_study {

class UaWriter {
 public:
  ByteWriter& base() { return w_; }

  void boolean(bool v) { w_.u8(v ? 1 : 0); }
  void byte(std::uint8_t v) { w_.u8(v); }
  void u16(std::uint16_t v) { w_.u16(v); }
  void u32(std::uint32_t v) { w_.u32(v); }
  void u64(std::uint64_t v) { w_.u64(v); }
  void i32(std::int32_t v) { w_.i32(v); }
  void i64(std::int64_t v) { w_.i64(v); }
  void f64(double v) { w_.f64(v); }
  void status(StatusCode v) { w_.u32(static_cast<std::uint32_t>(v)); }
  void datetime(std::int64_t filetime) { w_.i64(filetime); }

  /// UA String / ByteString: length-prefixed, -1 == null.
  void string(const std::string& s);
  void null_string() { w_.i32(-1); }
  void byte_string(const Bytes& b);
  void null_byte_string() { w_.i32(-1); }

  void node_id(const NodeId& id);
  /// ExpandedNodeId with neither namespace URI nor server index.
  void expanded_node_id(const NodeId& id);
  void qualified_name(const QualifiedName& qn);
  void localized_text(const LocalizedText& lt);
  void variant(const Variant& v);
  void data_value(const DataValue& dv);

  template <typename T, typename Fn>
  void array(const std::vector<T>& items, Fn&& encode_one) {
    w_.i32(static_cast<std::int32_t>(items.size()));
    for (const auto& item : items) encode_one(*this, item);
  }
  void string_array(const std::vector<std::string>& items);

  Bytes take() { return w_.take(); }
  const Bytes& bytes() const { return w_.bytes(); }

 private:
  ByteWriter w_;
};

class UaReader {
 public:
  explicit UaReader(std::span<const std::uint8_t> data) : r_(data) {}

  ByteReader& base() { return r_; }

  bool boolean() { return r_.u8() != 0; }
  std::uint8_t byte() { return r_.u8(); }
  std::uint16_t u16() { return r_.u16(); }
  std::uint32_t u32() { return r_.u32(); }
  std::uint64_t u64() { return r_.u64(); }
  std::int32_t i32() { return r_.i32(); }
  std::int64_t i64() { return r_.i64(); }
  double f64() { return r_.f64(); }
  StatusCode status() { return static_cast<StatusCode>(r_.u32()); }
  std::int64_t datetime() { return r_.i64(); }

  std::string string();
  Bytes byte_string();

  NodeId node_id();
  NodeId expanded_node_id();
  QualifiedName qualified_name();
  LocalizedText localized_text();
  Variant variant();
  DataValue data_value();

  template <typename T, typename Fn>
  std::vector<T> array(Fn&& decode_one) {
    const std::int32_t len = r_.i32();
    if (len < 0) return {};
    if (static_cast<std::size_t>(len) > r_.remaining()) throw DecodeError("array too long");
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(len));
    for (std::int32_t i = 0; i < len; ++i) out.push_back(decode_one(*this));
    return out;
  }
  std::vector<std::string> string_array();

  bool done() const { return r_.done(); }
  std::size_t remaining() const { return r_.remaining(); }

 private:
  ByteReader r_;
};

}  // namespace opcua_study
