#include "opcua/status.hpp"

namespace opcua_study {

std::string status_name(StatusCode code) {
  switch (code) {
    case StatusCode::Good: return "Good";
    case StatusCode::BadUnexpectedError: return "BadUnexpectedError";
    case StatusCode::BadInternalError: return "BadInternalError";
    case StatusCode::BadTimeout: return "BadTimeout";
    case StatusCode::BadServiceUnsupported: return "BadServiceUnsupported";
    case StatusCode::BadCommunicationError: return "BadCommunicationError";
    case StatusCode::BadEncodingError: return "BadEncodingError";
    case StatusCode::BadDecodingError: return "BadDecodingError";
    case StatusCode::BadEncodingLimitsExceeded: return "BadEncodingLimitsExceeded";
    case StatusCode::BadRequestTooLarge: return "BadRequestTooLarge";
    case StatusCode::BadConnectionRejected: return "BadConnectionRejected";
    case StatusCode::BadSecureChannelIdInvalid: return "BadSecureChannelIdInvalid";
    case StatusCode::BadSecurityChecksFailed: return "BadSecurityChecksFailed";
    case StatusCode::BadCertificateInvalid: return "BadCertificateInvalid";
    case StatusCode::BadCertificateUntrusted: return "BadCertificateUntrusted";
    case StatusCode::BadCertificateUriInvalid: return "BadCertificateUriInvalid";
    case StatusCode::BadSecurityModeRejected: return "BadSecurityModeRejected";
    case StatusCode::BadSecurityPolicyRejected: return "BadSecurityPolicyRejected";
    case StatusCode::BadIdentityTokenInvalid: return "BadIdentityTokenInvalid";
    case StatusCode::BadIdentityTokenRejected: return "BadIdentityTokenRejected";
    case StatusCode::BadUserAccessDenied: return "BadUserAccessDenied";
    case StatusCode::BadSessionIdInvalid: return "BadSessionIdInvalid";
    case StatusCode::BadSessionClosed: return "BadSessionClosed";
    case StatusCode::BadSessionNotActivated: return "BadSessionNotActivated";
    case StatusCode::BadTooManySessions: return "BadTooManySessions";
    case StatusCode::BadNodeIdUnknown: return "BadNodeIdUnknown";
    case StatusCode::BadAttributeIdInvalid: return "BadAttributeIdInvalid";
    case StatusCode::BadNotReadable: return "BadNotReadable";
    case StatusCode::BadNotWritable: return "BadNotWritable";
    case StatusCode::BadNotExecutable: return "BadNotExecutable";
    case StatusCode::BadContinuationPointInvalid: return "BadContinuationPointInvalid";
    case StatusCode::BadNothingToDo: return "BadNothingToDo";
    case StatusCode::BadTcpMessageTypeInvalid: return "BadTcpMessageTypeInvalid";
    case StatusCode::BadTcpEndpointUrlInvalid: return "BadTcpEndpointUrlInvalid";
    case StatusCode::BadRequestInterrupted: return "BadRequestInterrupted";
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%08X", static_cast<std::uint32_t>(code));
  return buf;
}

}  // namespace opcua_study
