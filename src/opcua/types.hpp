// OPC UA built-in types (OPC 10000-6 §5.1) — the subset the study needs.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "opcua/status.hpp"
#include "util/bytes.hpp"

namespace opcua_study {

/// NodeId: namespace index + numeric or string identifier.
struct NodeId {
  std::uint16_t namespace_index = 0;
  std::variant<std::uint32_t, std::string> identifier = std::uint32_t{0};

  NodeId() = default;
  NodeId(std::uint16_t ns, std::uint32_t numeric) : namespace_index(ns), identifier(numeric) {}
  NodeId(std::uint16_t ns, std::string name) : namespace_index(ns), identifier(std::move(name)) {}

  bool is_numeric() const { return std::holds_alternative<std::uint32_t>(identifier); }
  std::uint32_t numeric() const { return std::get<std::uint32_t>(identifier); }
  const std::string& text() const { return std::get<std::string>(identifier); }
  bool is_null() const { return namespace_index == 0 && is_numeric() && numeric() == 0; }

  std::string to_string() const;

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId& a, const NodeId& b) {
    if (auto c = a.namespace_index <=> b.namespace_index; c != 0) return c;
    return a.identifier <=> b.identifier;
  }
};

struct QualifiedName {
  std::uint16_t namespace_index = 0;
  std::string name;
  friend bool operator==(const QualifiedName&, const QualifiedName&) = default;
};

struct LocalizedText {
  std::string locale;
  std::string text;
  friend bool operator==(const LocalizedText&, const LocalizedText&) = default;
};

/// Variant: scalar or string-array payload (the address spaces of the study
/// carry sensor values, strings, timestamps and the NamespaceArray).
struct Variant {
  using Storage = std::variant<std::monostate, bool, std::int32_t, std::uint32_t, std::int64_t,
                               double, std::string, Bytes, std::vector<std::string>>;
  Storage value;

  Variant() = default;
  Variant(bool v) : value(v) {}                         // NOLINT(google-explicit-constructor)
  Variant(std::int32_t v) : value(v) {}                 // NOLINT(google-explicit-constructor)
  Variant(std::uint32_t v) : value(v) {}                // NOLINT(google-explicit-constructor)
  Variant(std::int64_t v) : value(v) {}                 // NOLINT(google-explicit-constructor)
  Variant(double v) : value(v) {}                       // NOLINT(google-explicit-constructor)
  Variant(std::string v) : value(std::move(v)) {}       // NOLINT(google-explicit-constructor)
  Variant(const char* v) : value(std::string(v)) {}     // NOLINT(google-explicit-constructor)
  Variant(Bytes v) : value(std::move(v)) {}             // NOLINT(google-explicit-constructor)
  Variant(std::vector<std::string> v) : value(std::move(v)) {}  // NOLINT

  bool empty() const { return std::holds_alternative<std::monostate>(value); }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(value);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(value);
  }
  std::string to_display_string() const;

  friend bool operator==(const Variant&, const Variant&) = default;
};

struct DataValue {
  Variant value;
  StatusCode status = StatusCode::Good;
  std::int64_t source_timestamp = 0;  // FILETIME ticks

  friend bool operator==(const DataValue&, const DataValue&) = default;
};

/// Well-known ns=0 node ids used by the stack (OPC 10000-5 subset).
namespace node_ids {
inline const NodeId kRootFolder{0, 84};
inline const NodeId kObjectsFolder{0, 85};
inline const NodeId kServer{0, 2253};
inline const NodeId kNamespaceArray{0, 2255};
inline const NodeId kServerArray{0, 2254};
inline const NodeId kServerStatus{0, 2256};
inline const NodeId kSoftwareVersion{0, 2264};
inline const NodeId kBuildInfo{0, 2260};
// Reference types.
inline const NodeId kOrganizes{0, 35};
inline const NodeId kHasComponent{0, 47};
inline const NodeId kHierarchicalReferences{0, 33};
}  // namespace node_ids

enum class NodeClass : std::uint32_t {
  Unspecified = 0,
  Object = 1,
  Variable = 2,
  Method = 4,
};

/// AccessLevel bit masks (OPC 10000-3 §8.57).
namespace access_level {
inline constexpr std::uint8_t kCurrentRead = 0x01;
inline constexpr std::uint8_t kCurrentWrite = 0x02;
}  // namespace access_level

/// Attribute ids (OPC 10000-4 §5.10, subset).
enum class AttributeId : std::uint32_t {
  NodeId = 1,
  NodeClass = 2,
  BrowseName = 3,
  DisplayName = 4,
  Value = 13,
  AccessLevel = 17,
  UserAccessLevel = 18,
  Executable = 21,
  UserExecutable = 22,
};

}  // namespace opcua_study
