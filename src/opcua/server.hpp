// OPC UA server: endpoint advertisement, secure channels, sessions,
// address-space services.
//
// Every Internet-facing deployment of the simulated population is an
// instance of this class, configured by the population generator with the
// security posture the paper observed in the wild: endpoint mode/policy
// sets, identity-token offerings, certificate(s), client-certificate trust
// behaviour, and session-rejection quirks.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "crypto/rsa.hpp"
#include "opcua/addressspace.hpp"
#include "opcua/messages.hpp"
#include "opcua/secureconv.hpp"

namespace opcua_study {

struct EndpointConfig {
  std::string url;  // opc.tcp://host:port/
  MessageSecurityMode mode = MessageSecurityMode::None;
  SecurityPolicy policy = SecurityPolicy::None;
  std::vector<UserTokenType> token_types = {UserTokenType::Anonymous};
  /// Index into ServerConfig::certificates; -1 = endpoint sends no cert
  /// (seen in the wild on None endpoints).
  int certificate_index = 0;
};

struct ServerIdentity {
  std::string application_uri;
  std::string product_uri;
  std::string application_name;
  ApplicationType application_type = ApplicationType::Server;
  std::string software_version = "1.0.0";
};

struct ServerCredential {
  std::string user;
  std::string password;
};

struct ServerConfig {
  ServerIdentity identity;
  std::vector<EndpointConfig> endpoints;
  /// Certificates (DER) with their private keys, referenced by endpoints.
  std::vector<Bytes> certificates;
  std::vector<RsaPrivateKey> private_keys;
  /// false → validate client certificates against a (empty) trust list and
  /// reject self-signed scanner certs: the paper's 80 "certificate not
  /// accepted" hosts.
  bool trust_all_client_certs = true;
  /// Reject ActivateSession with anonymous tokens even when advertised
  /// (paper: "faulty or incomplete endpoint configuration").
  bool reject_anonymous_sessions = false;
  /// Reject CreateSession outright (incomplete configuration).
  bool reject_all_sessions = false;
  std::vector<ServerCredential> users;
  /// Discovery servers: endpoints of *other* hosts announced here.
  std::vector<EndpointDescription> foreign_endpoints;
  std::vector<ApplicationDescription> known_servers;
  std::shared_ptr<AddressSpace> address_space;
};

class ServerConnection;

class Server {
 public:
  Server(ServerConfig config, std::uint64_t seed);

  const ServerConfig& config() const { return config_; }
  ApplicationDescription application_description() const;
  std::vector<EndpointDescription> endpoint_descriptions() const;

  std::unique_ptr<ServerConnection> accept();

 private:
  friend class ServerConnection;
  ServerConfig config_;
  std::uint64_t seed_;
  std::uint32_t next_channel_id_ = 1;
  std::uint32_t next_session_id_ = 1;
};

/// One TCP connection: lock-step frame in → frame out. An empty response
/// means the connection is closed (after CLO, or transport-fatal errors).
class ServerConnection {
 public:
  ServerConnection(Server& server, Rng rng);

  Bytes on_frame(std::span<const std::uint8_t> frame);
  bool closed() const { return closed_; }

 private:
  Bytes handle_hello(const Frame& frame);
  Bytes handle_opn(std::span<const std::uint8_t> wire);
  Bytes handle_msg(std::span<const std::uint8_t> wire);
  Bytes dispatch_service(std::span<const std::uint8_t> body);
  Bytes secure_response(std::span<const std::uint8_t> packed);
  Bytes error_frame(StatusCode code, const std::string& reason);
  Bytes fault(StatusCode code, std::uint32_t request_handle);

  Bytes handle_get_endpoints(const GetEndpointsRequest& req);
  Bytes handle_find_servers(const FindServersRequest& req);
  Bytes handle_create_session(const CreateSessionRequest& req);
  Bytes handle_activate_session(const ActivateSessionRequest& req);
  Bytes handle_close_session(const CloseSessionRequest& req);
  Bytes handle_browse(const BrowseRequest& req);
  Bytes handle_browse_next(const BrowseNextRequest& req);
  Bytes handle_read(const ReadRequest& req);
  Bytes handle_write(const WriteRequest& req);
  Bytes handle_call(const CallRequest& req);

  BrowseResult browse_one(const BrowseDescription& desc, std::uint32_t max_refs);

  Server& server_;
  Rng rng_;
  bool hello_done_ = false;
  bool closed_ = false;

  // Secure-channel state.
  bool channel_open_ = false;
  std::uint32_t channel_id_ = 0;
  std::uint32_t token_id_ = 0;
  SecurityPolicy channel_policy_ = SecurityPolicy::None;
  MessageSecurityMode channel_mode_ = MessageSecurityMode::None;
  int channel_endpoint_ = -1;  // index into config endpoints (-1 = discovery/None)
  Bytes client_cert_der_;
  std::optional<RsaPublicKey> client_public_key_;
  DerivedKeys client_keys_;  // client → server direction
  DerivedKeys server_keys_;  // server → client direction
  std::uint32_t seq_ = 1;
  std::uint32_t last_request_id_ = 0;

  // Session state.
  bool session_created_ = false;
  bool session_activated_ = false;
  NodeId session_auth_token_;
  Bytes session_client_nonce_;

  // Browse continuation points.
  std::map<std::uint32_t, std::vector<ReferenceDescription>> continuations_;
  std::uint32_t next_continuation_ = 1;
};

}  // namespace opcua_study
