// UA SecureConversation (OPC 10000-6 §6): securing OPN and MSG chunks.
//
// OPN chunks carry an asymmetric security header (policy URI, sender
// certificate, receiver certificate thumbprint) and — for any policy other
// than None — are signed with the sender's private key and encrypted with
// the receiver's public key. MSG chunks carry a symmetric header (token id)
// and use keys derived from the handshake nonces via P_SHA.
//
// Layout of the secured region (after the security header):
//   SequenceHeader | Body | Padding* | PaddingSize | Signature
// The signature covers the whole chunk up to (excluding) itself, with the
// final message size already patched into the header, exactly as the spec
// requires. Single-chunk messages only ('F'), which the study's message
// sizes never exceed.
#pragma once

#include <optional>

#include "crypto/rsa.hpp"
#include "crypto/x509.hpp"
#include "opcua/secpolicy.hpp"
#include "opcua/transport.hpp"
#include "util/rng.hpp"

namespace opcua_study {

/// Symmetric key block for one direction of a channel.
struct DerivedKeys {
  Bytes sig_key;
  Bytes enc_key;
  Bytes iv;
};

/// OPC UA key derivation: keys for the direction whose *remote* nonce is the
/// secret and *local* nonce is the seed (OPC 10000-6 §6.7.5).
DerivedKeys derive_keys(SecurityPolicy policy, std::span<const std::uint8_t> secret,
                        std::span<const std::uint8_t> seed);

struct SequenceHeader {
  std::uint32_t sequence_number = 1;
  std::uint32_t request_id = 1;
};

// ------------------------------------------------------------------ OPN ----

struct OpnSecurity {
  SecurityPolicy policy = SecurityPolicy::None;
  /// Sender side (signing); null for policy None.
  const RsaPrivateKey* local_private = nullptr;
  Bytes local_cert_der;
  /// Receiver side (encryption); null for policy None.
  const RsaPublicKey* remote_public = nullptr;
  Bytes remote_cert_thumbprint;
};

Bytes build_opn(std::uint32_t channel_id, const OpnSecurity& sec, SequenceHeader seq,
                std::span<const std::uint8_t> body, Rng& rng);

struct OpnParsed {
  std::uint32_t channel_id = 0;
  std::string policy_uri;
  SecurityPolicy policy = SecurityPolicy::None;
  Bytes sender_cert_der;           // empty if none sent
  Bytes receiver_cert_thumbprint;  // empty if none sent
  SequenceHeader seq;
  Bytes body;
};

/// Parse and (for secured policies) decrypt + verify an OPN chunk.
/// `local_private` is the receiver's key for decryption; signature is
/// verified against the sender certificate embedded in the message.
/// Throws DecodeError on malformed or cryptographically invalid chunks.
OpnParsed parse_opn(std::span<const std::uint8_t> wire, const RsaPrivateKey* local_private);

// ------------------------------------------------------------------ MSG ----

Bytes build_msg(std::string_view frame_type, std::uint32_t channel_id, std::uint32_t token_id,
                SequenceHeader seq, std::span<const std::uint8_t> body, SecurityPolicy policy,
                MessageSecurityMode mode, const DerivedKeys& sender_keys);

struct MsgParsed {
  std::uint32_t channel_id = 0;
  std::uint32_t token_id = 0;
  SequenceHeader seq;
  Bytes body;
};

MsgParsed parse_msg(std::span<const std::uint8_t> wire, SecurityPolicy policy,
                    MessageSecurityMode mode, const DerivedKeys& sender_keys);

}  // namespace opcua_study
