#include "opcua/messages.hpp"

namespace opcua_study {

namespace {
/// Null extension object (TypeId 0 + no body) for fields we carry but do not
/// interpret (additional headers, diagnostics).
void write_null_extension(UaWriter& w) {
  w.node_id(NodeId(0, 0));
  w.byte(0x00);
}
void skip_extension(UaReader& r) {
  r.node_id();
  const std::uint8_t encoding = r.byte();
  if (encoding & 0x01) {
    const std::int32_t len = r.i32();
    if (len > 0) r.base().skip(static_cast<std::size_t>(len));
  }
}
void write_null_diagnostic(UaWriter& w) { w.byte(0x00); }
void skip_diagnostic(UaReader& r) { r.byte(); }
}  // namespace

std::string user_token_type_name(UserTokenType t) {
  switch (t) {
    case UserTokenType::Anonymous: return "anonymous";
    case UserTokenType::UserName: return "credentials";
    case UserTokenType::Certificate: return "certificate";
    case UserTokenType::IssuedToken: return "token";
  }
  return "?";
}

void RequestHeader::encode(UaWriter& w) const {
  w.node_id(authentication_token);
  w.datetime(timestamp);
  w.u32(request_handle);
  w.u32(0);  // returnDiagnostics
  w.null_string();  // auditEntryId
  w.u32(timeout_hint);
  write_null_extension(w);
}

RequestHeader RequestHeader::decode(UaReader& r) {
  RequestHeader h;
  h.authentication_token = r.node_id();
  h.timestamp = r.datetime();
  h.request_handle = r.u32();
  r.u32();
  r.string();
  h.timeout_hint = r.u32();
  skip_extension(r);
  return h;
}

void ResponseHeader::encode(UaWriter& w) const {
  w.datetime(timestamp);
  w.u32(request_handle);
  w.status(service_result);
  write_null_diagnostic(w);
  w.i32(-1);  // stringTable: null array
  write_null_extension(w);
}

ResponseHeader ResponseHeader::decode(UaReader& r) {
  ResponseHeader h;
  h.timestamp = r.datetime();
  h.request_handle = r.u32();
  h.service_result = r.status();
  skip_diagnostic(r);
  r.string_array();
  skip_extension(r);
  return h;
}

void ApplicationDescription::encode(UaWriter& w) const {
  w.string(application_uri);
  w.string(product_uri);
  w.localized_text(application_name);
  w.u32(static_cast<std::uint32_t>(application_type));
  w.null_string();  // gatewayServerUri
  w.null_string();  // discoveryProfileUri
  w.string_array(discovery_urls);
}

ApplicationDescription ApplicationDescription::decode(UaReader& r) {
  ApplicationDescription a;
  a.application_uri = r.string();
  a.product_uri = r.string();
  a.application_name = r.localized_text();
  a.application_type = static_cast<ApplicationType>(r.u32());
  r.string();
  r.string();
  a.discovery_urls = r.string_array();
  return a;
}

void UserTokenPolicy::encode(UaWriter& w) const {
  w.string(policy_id);
  w.u32(static_cast<std::uint32_t>(token_type));
  w.null_string();  // issuedTokenType
  w.null_string();  // issuerEndpointUrl
  w.string(security_policy_uri);
}

UserTokenPolicy UserTokenPolicy::decode(UaReader& r) {
  UserTokenPolicy p;
  p.policy_id = r.string();
  p.token_type = static_cast<UserTokenType>(r.u32());
  r.string();
  r.string();
  p.security_policy_uri = r.string();
  return p;
}

void EndpointDescription::encode(UaWriter& w) const {
  w.string(endpoint_url);
  server.encode(w);
  w.byte_string(server_certificate);
  w.u32(static_cast<std::uint32_t>(security_mode));
  w.string(security_policy_uri);
  w.array(user_identity_tokens, [](UaWriter& ww, const UserTokenPolicy& p) { p.encode(ww); });
  w.string(transport_profile_uri);
  w.byte(security_level);
}

EndpointDescription EndpointDescription::decode(UaReader& r) {
  EndpointDescription e;
  e.endpoint_url = r.string();
  e.server = ApplicationDescription::decode(r);
  e.server_certificate = r.byte_string();
  e.security_mode = static_cast<MessageSecurityMode>(r.u32());
  e.security_policy_uri = r.string();
  e.user_identity_tokens =
      r.array<UserTokenPolicy>([](UaReader& rr) { return UserTokenPolicy::decode(rr); });
  e.transport_profile_uri = r.string();
  e.security_level = r.byte();
  return e;
}

void SignatureData::encode(UaWriter& w) const {
  if (algorithm.empty()) {
    w.null_string();
  } else {
    w.string(algorithm);
  }
  if (signature.empty()) {
    w.null_byte_string();
  } else {
    w.byte_string(signature);
  }
}

SignatureData SignatureData::decode(UaReader& r) {
  SignatureData s;
  s.algorithm = r.string();
  s.signature = r.byte_string();
  return s;
}

void UserIdentityToken::encode(UaWriter& w) const {
  std::uint32_t type_id = type_ids::kAnonymousIdentityToken;
  switch (kind) {
    case UserTokenType::Anonymous: type_id = type_ids::kAnonymousIdentityToken; break;
    case UserTokenType::UserName: type_id = type_ids::kUserNameIdentityToken; break;
    case UserTokenType::Certificate: type_id = type_ids::kX509IdentityToken; break;
    case UserTokenType::IssuedToken: type_id = type_ids::kIssuedIdentityToken; break;
  }
  w.node_id(NodeId(0, type_id));
  w.byte(0x01);  // body is a ByteString
  UaWriter body;
  body.string(policy_id);
  switch (kind) {
    case UserTokenType::Anonymous: break;
    case UserTokenType::UserName:
      body.string(user_name);
      body.byte_string(password);
      body.null_string();  // encryptionAlgorithm
      break;
    case UserTokenType::Certificate: body.byte_string(certificate_data); break;
    case UserTokenType::IssuedToken:
      body.byte_string(token_data);
      body.null_string();
      break;
  }
  w.byte_string(body.take());
}

UserIdentityToken UserIdentityToken::decode(UaReader& r) {
  UserIdentityToken t;
  const NodeId type_node = r.node_id();
  const std::uint8_t encoding = r.byte();
  if (encoding != 0x01) throw DecodeError("identity token must have binary body");
  const Bytes body_bytes = r.byte_string();
  UaReader body(body_bytes);
  const std::uint32_t type_id = type_node.is_numeric() ? type_node.numeric() : 0;
  t.policy_id = body.string();
  switch (type_id) {
    case type_ids::kAnonymousIdentityToken: t.kind = UserTokenType::Anonymous; break;
    case type_ids::kUserNameIdentityToken:
      t.kind = UserTokenType::UserName;
      t.user_name = body.string();
      t.password = body.byte_string();
      body.string();
      break;
    case type_ids::kX509IdentityToken:
      t.kind = UserTokenType::Certificate;
      t.certificate_data = body.byte_string();
      break;
    case type_ids::kIssuedIdentityToken:
      t.kind = UserTokenType::IssuedToken;
      t.token_data = body.byte_string();
      break;
    default: throw DecodeError("unknown identity token type");
  }
  return t;
}

// ------------------------------------------------------------- services ----

void OpenSecureChannelRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.u32(client_protocol_version);
  w.u32(request_type);
  w.u32(static_cast<std::uint32_t>(security_mode));
  w.byte_string(client_nonce);
  w.u32(requested_lifetime_ms);
}

OpenSecureChannelRequest OpenSecureChannelRequest::decode(UaReader& r) {
  OpenSecureChannelRequest m;
  m.header = RequestHeader::decode(r);
  m.client_protocol_version = r.u32();
  m.request_type = r.u32();
  m.security_mode = static_cast<MessageSecurityMode>(r.u32());
  m.client_nonce = r.byte_string();
  m.requested_lifetime_ms = r.u32();
  return m;
}

void OpenSecureChannelResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.u32(server_protocol_version);
  w.u32(channel_id);
  w.u32(token_id);
  w.datetime(created_at);
  w.u32(revised_lifetime_ms);
  w.byte_string(server_nonce);
}

OpenSecureChannelResponse OpenSecureChannelResponse::decode(UaReader& r) {
  OpenSecureChannelResponse m;
  m.header = ResponseHeader::decode(r);
  m.server_protocol_version = r.u32();
  m.channel_id = r.u32();
  m.token_id = r.u32();
  m.created_at = r.datetime();
  m.revised_lifetime_ms = r.u32();
  m.server_nonce = r.byte_string();
  return m;
}

void CloseSecureChannelRequest::encode(UaWriter& w) const { header.encode(w); }

CloseSecureChannelRequest CloseSecureChannelRequest::decode(UaReader& r) {
  CloseSecureChannelRequest m;
  m.header = RequestHeader::decode(r);
  return m;
}

void GetEndpointsRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.string(endpoint_url);
  w.i32(-1);  // localeIds
  w.i32(-1);  // profileUris
}

GetEndpointsRequest GetEndpointsRequest::decode(UaReader& r) {
  GetEndpointsRequest m;
  m.header = RequestHeader::decode(r);
  m.endpoint_url = r.string();
  r.string_array();
  r.string_array();
  return m;
}

void GetEndpointsResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(endpoints, [](UaWriter& ww, const EndpointDescription& e) { e.encode(ww); });
}

GetEndpointsResponse GetEndpointsResponse::decode(UaReader& r) {
  GetEndpointsResponse m;
  m.header = ResponseHeader::decode(r);
  m.endpoints =
      r.array<EndpointDescription>([](UaReader& rr) { return EndpointDescription::decode(rr); });
  return m;
}

void FindServersRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.string(endpoint_url);
  w.i32(-1);
  w.i32(-1);
}

FindServersRequest FindServersRequest::decode(UaReader& r) {
  FindServersRequest m;
  m.header = RequestHeader::decode(r);
  m.endpoint_url = r.string();
  r.string_array();
  r.string_array();
  return m;
}

void FindServersResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(servers, [](UaWriter& ww, const ApplicationDescription& a) { a.encode(ww); });
}

FindServersResponse FindServersResponse::decode(UaReader& r) {
  FindServersResponse m;
  m.header = ResponseHeader::decode(r);
  m.servers = r.array<ApplicationDescription>(
      [](UaReader& rr) { return ApplicationDescription::decode(rr); });
  return m;
}

void CreateSessionRequest::encode(UaWriter& w) const {
  header.encode(w);
  client_description.encode(w);
  w.null_string();  // serverUri
  w.string(endpoint_url);
  w.string(session_name);
  w.byte_string(client_nonce);
  if (client_certificate.empty()) {
    w.null_byte_string();
  } else {
    w.byte_string(client_certificate);
  }
  w.f64(requested_session_timeout_ms);
  w.u32(0);  // maxResponseMessageSize
}

CreateSessionRequest CreateSessionRequest::decode(UaReader& r) {
  CreateSessionRequest m;
  m.header = RequestHeader::decode(r);
  m.client_description = ApplicationDescription::decode(r);
  r.string();
  m.endpoint_url = r.string();
  m.session_name = r.string();
  m.client_nonce = r.byte_string();
  m.client_certificate = r.byte_string();
  m.requested_session_timeout_ms = r.f64();
  r.u32();
  return m;
}

void CreateSessionResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.node_id(session_id);
  w.node_id(authentication_token);
  w.f64(revised_session_timeout_ms);
  w.byte_string(server_nonce);
  if (server_certificate.empty()) {
    w.null_byte_string();
  } else {
    w.byte_string(server_certificate);
  }
  w.array(server_endpoints, [](UaWriter& ww, const EndpointDescription& e) { e.encode(ww); });
  w.i32(-1);  // serverSoftwareCertificates
  server_signature.encode(w);
  w.u32(0);  // maxRequestMessageSize
}

CreateSessionResponse CreateSessionResponse::decode(UaReader& r) {
  CreateSessionResponse m;
  m.header = ResponseHeader::decode(r);
  m.session_id = r.node_id();
  m.authentication_token = r.node_id();
  m.revised_session_timeout_ms = r.f64();
  m.server_nonce = r.byte_string();
  m.server_certificate = r.byte_string();
  m.server_endpoints =
      r.array<EndpointDescription>([](UaReader& rr) { return EndpointDescription::decode(rr); });
  const std::int32_t n_sw = r.i32();
  for (std::int32_t i = 0; i < n_sw; ++i) throw DecodeError("software certificates unsupported");
  m.server_signature = SignatureData::decode(r);
  r.u32();
  return m;
}

void ActivateSessionRequest::encode(UaWriter& w) const {
  header.encode(w);
  client_signature.encode(w);
  w.i32(-1);  // clientSoftwareCertificates
  w.i32(-1);  // localeIds
  user_identity_token.encode(w);
  SignatureData{}.encode(w);  // userTokenSignature
}

ActivateSessionRequest ActivateSessionRequest::decode(UaReader& r) {
  ActivateSessionRequest m;
  m.header = RequestHeader::decode(r);
  m.client_signature = SignatureData::decode(r);
  const std::int32_t n_sw = r.i32();
  for (std::int32_t i = 0; i < n_sw; ++i) throw DecodeError("software certificates unsupported");
  r.string_array();
  m.user_identity_token = UserIdentityToken::decode(r);
  SignatureData::decode(r);
  return m;
}

void ActivateSessionResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.byte_string(server_nonce);
  w.i32(-1);  // results
  w.i32(-1);  // diagnosticInfos
}

ActivateSessionResponse ActivateSessionResponse::decode(UaReader& r) {
  ActivateSessionResponse m;
  m.header = ResponseHeader::decode(r);
  m.server_nonce = r.byte_string();
  r.i32();
  r.i32();
  return m;
}

void CloseSessionRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.boolean(delete_subscriptions);
}

CloseSessionRequest CloseSessionRequest::decode(UaReader& r) {
  CloseSessionRequest m;
  m.header = RequestHeader::decode(r);
  m.delete_subscriptions = r.boolean();
  return m;
}

void CloseSessionResponse::encode(UaWriter& w) const { header.encode(w); }

CloseSessionResponse CloseSessionResponse::decode(UaReader& r) {
  CloseSessionResponse m;
  m.header = ResponseHeader::decode(r);
  return m;
}

void BrowseDescription::encode(UaWriter& w) const {
  w.node_id(node_id);
  w.u32(static_cast<std::uint32_t>(direction));
  w.node_id(reference_type_id);
  w.boolean(include_subtypes);
  w.u32(node_class_mask);
  w.u32(result_mask);
}

BrowseDescription BrowseDescription::decode(UaReader& r) {
  BrowseDescription b;
  b.node_id = r.node_id();
  b.direction = static_cast<BrowseDirection>(r.u32());
  b.reference_type_id = r.node_id();
  b.include_subtypes = r.boolean();
  b.node_class_mask = r.u32();
  b.result_mask = r.u32();
  return b;
}

void ReferenceDescription::encode(UaWriter& w) const {
  w.node_id(reference_type_id);
  w.boolean(is_forward);
  w.expanded_node_id(node_id);
  w.qualified_name(browse_name);
  w.localized_text(display_name);
  w.u32(static_cast<std::uint32_t>(node_class));
  w.expanded_node_id(type_definition);
}

ReferenceDescription ReferenceDescription::decode(UaReader& r) {
  ReferenceDescription d;
  d.reference_type_id = r.node_id();
  d.is_forward = r.boolean();
  d.node_id = r.expanded_node_id();
  d.browse_name = r.qualified_name();
  d.display_name = r.localized_text();
  d.node_class = static_cast<NodeClass>(r.u32());
  d.type_definition = r.expanded_node_id();
  return d;
}

void BrowseResult::encode(UaWriter& w) const {
  w.status(status);
  if (continuation_point.empty()) {
    w.null_byte_string();
  } else {
    w.byte_string(continuation_point);
  }
  w.array(references, [](UaWriter& ww, const ReferenceDescription& d) { d.encode(ww); });
}

BrowseResult BrowseResult::decode(UaReader& r) {
  BrowseResult b;
  b.status = r.status();
  b.continuation_point = r.byte_string();
  b.references = r.array<ReferenceDescription>(
      [](UaReader& rr) { return ReferenceDescription::decode(rr); });
  return b;
}

void BrowseRequest::encode(UaWriter& w) const {
  header.encode(w);
  // ViewDescription: null view id + timestamp + version
  w.node_id(NodeId(0, 0));
  w.datetime(0);
  w.u32(0);
  w.u32(requested_max_references_per_node);
  w.array(nodes_to_browse, [](UaWriter& ww, const BrowseDescription& b) { b.encode(ww); });
}

BrowseRequest BrowseRequest::decode(UaReader& r) {
  BrowseRequest m;
  m.header = RequestHeader::decode(r);
  r.node_id();
  r.datetime();
  r.u32();
  m.requested_max_references_per_node = r.u32();
  m.nodes_to_browse =
      r.array<BrowseDescription>([](UaReader& rr) { return BrowseDescription::decode(rr); });
  return m;
}

void BrowseResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(results, [](UaWriter& ww, const BrowseResult& b) { b.encode(ww); });
  w.i32(-1);  // diagnosticInfos
}

BrowseResponse BrowseResponse::decode(UaReader& r) {
  BrowseResponse m;
  m.header = ResponseHeader::decode(r);
  m.results = r.array<BrowseResult>([](UaReader& rr) { return BrowseResult::decode(rr); });
  r.i32();
  return m;
}

void BrowseNextRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.boolean(release_continuation_points);
  w.array(continuation_points, [](UaWriter& ww, const Bytes& b) { ww.byte_string(b); });
}

BrowseNextRequest BrowseNextRequest::decode(UaReader& r) {
  BrowseNextRequest m;
  m.header = RequestHeader::decode(r);
  m.release_continuation_points = r.boolean();
  m.continuation_points = r.array<Bytes>([](UaReader& rr) { return rr.byte_string(); });
  return m;
}

void BrowseNextResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(results, [](UaWriter& ww, const BrowseResult& b) { b.encode(ww); });
  w.i32(-1);
}

BrowseNextResponse BrowseNextResponse::decode(UaReader& r) {
  BrowseNextResponse m;
  m.header = ResponseHeader::decode(r);
  m.results = r.array<BrowseResult>([](UaReader& rr) { return BrowseResult::decode(rr); });
  r.i32();
  return m;
}

void ReadValueId::encode(UaWriter& w) const {
  w.node_id(node_id);
  w.u32(static_cast<std::uint32_t>(attribute_id));
  w.null_string();  // indexRange
  w.qualified_name(QualifiedName{});  // dataEncoding
}

ReadValueId ReadValueId::decode(UaReader& r) {
  ReadValueId v;
  v.node_id = r.node_id();
  v.attribute_id = static_cast<AttributeId>(r.u32());
  r.string();
  r.qualified_name();
  return v;
}

void ReadRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.f64(max_age);
  w.u32(timestamps_to_return);
  w.array(nodes_to_read, [](UaWriter& ww, const ReadValueId& v) { v.encode(ww); });
}

ReadRequest ReadRequest::decode(UaReader& r) {
  ReadRequest m;
  m.header = RequestHeader::decode(r);
  m.max_age = r.f64();
  m.timestamps_to_return = r.u32();
  m.nodes_to_read = r.array<ReadValueId>([](UaReader& rr) { return ReadValueId::decode(rr); });
  return m;
}

void ReadResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(results, [](UaWriter& ww, const DataValue& v) { ww.data_value(v); });
  w.i32(-1);
}

ReadResponse ReadResponse::decode(UaReader& r) {
  ReadResponse m;
  m.header = ResponseHeader::decode(r);
  m.results = r.array<DataValue>([](UaReader& rr) { return rr.data_value(); });
  r.i32();
  return m;
}

void WriteValue::encode(UaWriter& w) const {
  w.node_id(node_id);
  w.u32(static_cast<std::uint32_t>(attribute_id));
  w.null_string();  // indexRange
  w.data_value(value);
}

WriteValue WriteValue::decode(UaReader& r) {
  WriteValue v;
  v.node_id = r.node_id();
  v.attribute_id = static_cast<AttributeId>(r.u32());
  r.string();
  v.value = r.data_value();
  return v;
}

void WriteRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.array(nodes_to_write, [](UaWriter& ww, const WriteValue& v) { v.encode(ww); });
}

WriteRequest WriteRequest::decode(UaReader& r) {
  WriteRequest m;
  m.header = RequestHeader::decode(r);
  m.nodes_to_write = r.array<WriteValue>([](UaReader& rr) { return WriteValue::decode(rr); });
  return m;
}

void WriteResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(results, [](UaWriter& ww, const StatusCode& s) { ww.status(s); });
  w.i32(-1);  // diagnosticInfos
}

WriteResponse WriteResponse::decode(UaReader& r) {
  WriteResponse m;
  m.header = ResponseHeader::decode(r);
  m.results = r.array<StatusCode>([](UaReader& rr) { return rr.status(); });
  r.i32();
  return m;
}

void CallMethodRequest::encode(UaWriter& w) const {
  w.node_id(object_id);
  w.node_id(method_id);
  w.array(input_arguments, [](UaWriter& ww, const Variant& v) { ww.variant(v); });
}

CallMethodRequest CallMethodRequest::decode(UaReader& r) {
  CallMethodRequest m;
  m.object_id = r.node_id();
  m.method_id = r.node_id();
  m.input_arguments = r.array<Variant>([](UaReader& rr) { return rr.variant(); });
  return m;
}

void CallMethodResult::encode(UaWriter& w) const {
  w.status(status);
  w.i32(-1);  // inputArgumentResults
  w.i32(-1);  // inputArgumentDiagnosticInfos
  w.array(output_arguments, [](UaWriter& ww, const Variant& v) { ww.variant(v); });
}

CallMethodResult CallMethodResult::decode(UaReader& r) {
  CallMethodResult m;
  m.status = r.status();
  r.i32();
  r.i32();
  m.output_arguments = r.array<Variant>([](UaReader& rr) { return rr.variant(); });
  return m;
}

void CallRequest::encode(UaWriter& w) const {
  header.encode(w);
  w.array(methods_to_call, [](UaWriter& ww, const CallMethodRequest& m) { m.encode(ww); });
}

CallRequest CallRequest::decode(UaReader& r) {
  CallRequest m;
  m.header = RequestHeader::decode(r);
  m.methods_to_call =
      r.array<CallMethodRequest>([](UaReader& rr) { return CallMethodRequest::decode(rr); });
  return m;
}

void CallResponse::encode(UaWriter& w) const {
  header.encode(w);
  w.array(results, [](UaWriter& ww, const CallMethodResult& m) { m.encode(ww); });
  w.i32(-1);
}

CallResponse CallResponse::decode(UaReader& r) {
  CallResponse m;
  m.header = ResponseHeader::decode(r);
  m.results =
      r.array<CallMethodResult>([](UaReader& rr) { return CallMethodResult::decode(rr); });
  r.i32();
  return m;
}

void ServiceFault::encode(UaWriter& w) const { header.encode(w); }

ServiceFault ServiceFault::decode(UaReader& r) {
  ServiceFault m;
  m.header = ResponseHeader::decode(r);
  return m;
}

std::uint32_t peek_type_id(std::span<const std::uint8_t> packed) {
  UaReader r(packed);
  const NodeId id = r.node_id();
  if (!id.is_numeric()) throw DecodeError("non-numeric service type id");
  return id.numeric();
}

}  // namespace opcua_study
