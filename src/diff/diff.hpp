// Cross-campaign differential analysis — the PAM 2022 "Missed
// Opportunities" comparison as a subsystem.
//
// diff_campaigns() consumes the *final* measurement of two recorded
// campaigns (base, follow-up) through the same RecordSource machinery the
// Aggregator streams, and answers the longitudinal question the source
// paper left open: did operators migrate, churn, or stay insecure?
//
// Pipeline (all deterministic, thread-count-invariant):
//   1. posture pass   chunk workers reduce every host record to a compact
//                     HostPosture summary (address, strongest advertised
//                     mode/policy, deprecated/anonymous flags, deficiency
//                     per the paper's §5.2 definition, certificate
//                     fingerprints); partials concatenate in chunk-index
//                     order, so the posture vectors are record-ordered
//                     regardless of scheduling.
//   2. matcher        hosts pair first by (ip, port); leftovers pair by
//                     certificate fingerprint, accepted only when the
//                     fingerprint identifies exactly one unmatched host on
//                     *each* side (a reused certificate re-identifies
//                     nobody). Follow-up hosts are scanned in record
//                     order, so ties resolve identically on every run.
//   3. report         posture transition matrices over the matched pairs,
//                     population churn counts, certificate renewal vs.
//                     verbatim reuse, and deficiency evolution.
//
// Memory is bounded by the posture summaries (tens of bytes per host —
// fingerprints are truncated to 64 bits, never DER), not by the records:
// two 1M-host campaigns diff comfortably where the load-all path holds
// ~2 GB of decoded records (bench/campaign_diff.cpp pins both).
//
// Since the series layer landed, the pairwise diff is the N=2
// specialization of src/series/: collect_postures / match_postures /
// tally_step (src/series/matcher.hpp) are the shared core, and
// analyze_series over a two-member CampaignSet reproduces every
// CampaignDiff count field for field (tests/test_series.cpp pins it).
#pragma once

#include "analysis/analysis.hpp"

namespace opcua_study {

struct DiffOptions {
  /// Worker threads for the posture pass; 0 = hardware concurrency,
  /// 1 = inline. The resulting CampaignDiff is identical for any value.
  int threads = 1;
  /// Enforce that the inputs form a (base, follow-up) pair when both
  /// declare a campaign identity (SnapshotMeta campaign label/epoch).
  bool validate_pairing = true;
  /// Chunk size when diffing in-memory snapshot vectors.
  std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords;
};

/// 3x3 posture transition counts over matched hosts: rows = base bucket,
/// columns = follow-up bucket.
struct TransitionMatrix {
  std::uint64_t counts[3][3] = {};

  std::uint64_t at(std::size_t from, std::size_t to) const { return counts[from][to]; }
  std::uint64_t total() const;
  /// Matched hosts that moved to a strictly higher / lower bucket.
  std::uint64_t upgraded() const;
  std::uint64_t downgraded() const;

  friend bool operator==(const TransitionMatrix&, const TransitionMatrix&) = default;
};

/// Bucket labels for the two matrices.
inline constexpr const char* kModeBuckets[3] = {"None", "Sign", "SignAndEncrypt"};
inline constexpr const char* kPolicyBuckets[3] = {"None", "Deprecated", "Secure"};

/// Per-protocol slice of the population/deficiency accounting — the
/// cross-protocol dimension of a mixed-fleet diff. Matching never crosses
/// protocols, so matched rows partition cleanly. A single-protocol
/// campaign pair produces exactly one "opcua" row.
struct ProtocolDiffRow {
  std::uint64_t base_hosts = 0, followup_hosts = 0;
  std::uint64_t matched = 0;
  std::uint64_t base_deficient = 0, followup_deficient = 0;

  friend bool operator==(const ProtocolDiffRow&, const ProtocolDiffRow&) = default;
};

struct CampaignDiff {
  // Identity of the two compared measurements (campaign label/epoch is
  // empty/0 for inputs that never declared one).
  SnapshotMeta base_week, followup_week;

  // Population accounting. matched = matched_by_address +
  // matched_by_certificate; every base host is matched or retired, every
  // follow-up host matched or arrived.
  std::uint64_t base_hosts = 0, followup_hosts = 0;
  std::uint64_t matched_by_address = 0;
  std::uint64_t matched_by_certificate = 0;  // churned IP, re-identified by cert
  std::uint64_t retired = 0;                 // present in base only
  std::uint64_t arrived = 0;                 // present in follow-up only

  // Matcher evidence grading: how the certificate matches were made.
  // matched_by_certificate = corroborated + bare; corroborated links carry
  // a second agreeing signal (same non-zero AS, or same application URI)
  // next to the unique fingerprint, bare links only the fingerprint.
  std::uint64_t cert_matches_corroborated = 0;
  std::uint64_t cert_matches_bare = 0;

  /// Confidence-weighted average over every accepted link (address 1.0,
  /// corroborated certificate 0.9, bare certificate 0.6) — the scalar
  /// re-identification quality grade the reports surface. 0 when nothing
  /// matched.
  double mean_match_confidence() const;

  // Posture transitions over matched hosts. Mode buckets: strongest
  // advertised None / Sign / SignAndEncrypt; policy buckets: strongest
  // advertised None / deprecated (Basic128Rsa15, Basic256) / secure.
  TransitionMatrix mode_transitions;
  TransitionMatrix policy_transitions;
  std::uint64_t deprecated_retained = 0;  // announced deprecated in both
  std::uint64_t deprecated_dropped = 0;
  std::uint64_t deprecated_adopted = 0;
  std::uint64_t anonymous_retained = 0;
  std::uint64_t anonymous_dropped = 0;
  std::uint64_t anonymous_adopted = 0;

  // Certificate evolution over matched hosts.
  std::uint64_t certs_verbatim = 0;  // identical fingerprint set (§5.3 reuse)
  std::uint64_t certs_renewed = 0;   // disjoint non-empty sets
  std::uint64_t certs_rotated = 0;   // both non-empty, partial overlap
  std::uint64_t certs_gained = 0;    // no certificate before, some now
  std::uint64_t certs_lost = 0;      // some certificate before, none now
  std::uint64_t certs_absent = 0;    // no certificate on either side

  // Per-protocol population split (the ProtocolProbe registry dimension).
  std::map<ProtocolId, ProtocolDiffRow> by_protocol;

  // Deficiency evolution (paper §5.2: None-only, deprecated maximum, weak
  // certificate, or anonymous access) over matched hosts.
  std::uint64_t still_deficient = 0;
  std::uint64_t remediated = 0;      // deficient -> clean
  std::uint64_t regressed = 0;       // clean -> deficient
  std::uint64_t never_deficient = 0;

  std::uint64_t matched() const { return matched_by_address + matched_by_certificate; }

  /// Equality of every count, ignoring the campaign identity metadata —
  /// what the determinism tests compare across streamed vs. load-all
  /// inputs (in-memory snapshots carry no campaign labels).
  bool counts_equal(const CampaignDiff& other) const;

  friend bool operator==(const CampaignDiff&, const CampaignDiff&) = default;
};

/// Diff the final measurements of two campaigns. Throws SnapshotError when
/// either campaign is empty, or (validate_pairing) when both inputs
/// declare campaign identities that do not form a base -> follow-up pair.
CampaignDiff diff_campaigns(const RecordSource& base, const RecordSource& followup,
                            const DiffOptions& options = {});

/// Diff two recorded snapshot files, streaming both chunk by chunk.
CampaignDiff diff_files(const std::string& base_path, std::uint64_t base_seed,
                        const std::string& followup_path, std::uint64_t followup_seed,
                        const DiffOptions& options = {});

/// Diff two in-memory campaigns (the load-all path).
CampaignDiff diff_snapshots(const std::vector<ScanSnapshot>& base,
                            const std::vector<ScanSnapshot>& followup,
                            const DiffOptions& options = {});

/// The machine-readable report (report/json.hpp formatting) —
/// examples/diff_report.cpp writes this next to its tables.
std::string campaign_diff_json(const CampaignDiff& diff);

/// Appends the diff's fields into an already-open JSON object — the
/// building block campaign_diff_json wraps, and what the series report
/// reuses to render each adjacent step.
class JsonWriter;
void append_campaign_diff_fields(JsonWriter& json, const CampaignDiff& diff);

}  // namespace opcua_study
