// The pairwise campaign diff, re-expressed as the N=2 specialization of
// the series matcher: collect postures for both campaigns, run the
// two-pass matcher, tally the transition report. All the determinism
// reasoning lives with the shared core in src/series/matcher.cpp.
#include "diff/diff.hpp"

#include "obs/metrics.hpp"
#include "report/json.hpp"
#include "scanner/snapshot_io.hpp"
#include "series/matcher.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

std::uint64_t TransitionMatrix::total() const {
  std::uint64_t sum = 0;
  for (const auto& row : counts) {
    for (const std::uint64_t c : row) sum += c;
  }
  return sum;
}

std::uint64_t TransitionMatrix::upgraded() const {
  std::uint64_t sum = 0;
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = from + 1; to < 3; ++to) sum += counts[from][to];
  }
  return sum;
}

std::uint64_t TransitionMatrix::downgraded() const {
  std::uint64_t sum = 0;
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = 0; to < from; ++to) sum += counts[from][to];
  }
  return sum;
}

double CampaignDiff::mean_match_confidence() const {
  return opcua_study::mean_match_confidence(matched_by_address, cert_matches_corroborated,
                                            cert_matches_bare);
}

bool CampaignDiff::counts_equal(const CampaignDiff& other) const {
  auto strip = [](CampaignDiff d) {
    d.base_week.campaign_label.clear();
    d.base_week.campaign_epoch_days = 0;
    d.followup_week.campaign_label.clear();
    d.followup_week.campaign_epoch_days = 0;
    return d;
  };
  return strip(*this) == strip(other);
}

CampaignDiff diff_campaigns(const RecordSource& base, const RecordSource& followup,
                            const DiffOptions& options) {
  const obs::WallTimer pass_timer(obs::Metric::diff_pass_wall_us);
  if (base.week_count() == 0 || followup.week_count() == 0) {
    throw SnapshotError("campaign diff needs >= 1 measurement per campaign");
  }
  const SnapshotMeta base_week = base.week_meta(base.week_count() - 1);
  const SnapshotMeta followup_week = followup.week_meta(followup.week_count() - 1);
  if (options.validate_pairing) validate_campaign_chain({base_week, followup_week});

  ThreadPool pool(options.threads);
  const std::vector<HostPosture> a = collect_postures(base, pool);
  const std::vector<HostPosture> b = collect_postures(followup, pool);
  CampaignDiff diff = tally_step(a, b, match_postures(a, b));
  diff.base_week = base_week;
  diff.followup_week = followup_week;
  return diff;
}

CampaignDiff diff_files(const std::string& base_path, std::uint64_t base_seed,
                        const std::string& followup_path, std::uint64_t followup_seed,
                        const DiffOptions& options) {
  const SnapshotReader base(base_path, base_seed);
  const SnapshotReader followup(followup_path, followup_seed);
  return diff_campaigns(ReaderRecordSource(base), ReaderRecordSource(followup), options);
}

CampaignDiff diff_snapshots(const std::vector<ScanSnapshot>& base,
                            const std::vector<ScanSnapshot>& followup,
                            const DiffOptions& options) {
  return diff_campaigns(SnapshotVectorSource(base, options.chunk_records),
                        SnapshotVectorSource(followup, options.chunk_records), options);
}

void append_campaign_diff_fields(JsonWriter& json, const CampaignDiff& diff) {
  auto campaign = [&](const char* key, const SnapshotMeta& week, std::uint64_t hosts) {
    json.key(key)
        .begin_object()
        .field("label", week.campaign_label)
        .field("epoch_days", static_cast<std::uint64_t>(week.campaign_epoch_days))
        .field("date_days", static_cast<std::uint64_t>(week.date_days))
        .field("hosts", hosts)
        .end_object();
  };
  auto matrix = [&](const char* key, const TransitionMatrix& m, const char* const buckets[3]) {
    json.key(key).begin_object().key("buckets").begin_array();
    for (std::size_t i = 0; i < 3; ++i) json.value(buckets[i]);
    json.end_array().key("counts").begin_array();
    for (std::size_t from = 0; from < 3; ++from) {
      json.begin_array();
      for (std::size_t to = 0; to < 3; ++to) json.value(m.counts[from][to]);
      json.end_array();
    }
    json.end_array()
        .field("upgraded", m.upgraded())
        .field("downgraded", m.downgraded())
        .end_object();
  };
  campaign("base", diff.base_week, diff.base_hosts);
  campaign("followup", diff.followup_week, diff.followup_hosts);
  json.key("population")
      .begin_object()
      .field("matched_by_address", diff.matched_by_address)
      .field("matched_by_certificate", diff.matched_by_certificate)
      .field("retired", diff.retired)
      .field("arrived", diff.arrived)
      .end_object();
  // Per-protocol population split; single-protocol pairs carry one row.
  json.key("protocols").begin_object();
  for (const auto& [protocol, row] : diff.by_protocol) {
    json.key(protocol_name(protocol))
        .begin_object()
        .field("base_hosts", row.base_hosts)
        .field("followup_hosts", row.followup_hosts)
        .field("matched", row.matched)
        .field("base_deficient", row.base_deficient)
        .field("followup_deficient", row.followup_deficient)
        .end_object();
  }
  json.end_object();
  // Matcher evidence grading: link counts per evidence class, the fixed
  // per-link confidence each class carries, and the confidence-weighted
  // mean — the audit trail for re-identification quality.
  json.key("match_evidence")
      .begin_object()
      .field("address", diff.matched_by_address)
      .field("certificate_corroborated", diff.cert_matches_corroborated)
      .field("certificate_bare", diff.cert_matches_bare)
      .key("link_confidence")
      .begin_object()
      .field("address", match_confidence(MatchEvidence::address))
      .field("certificate_corroborated", match_confidence(MatchEvidence::cert_corroborated))
      .field("certificate_bare", match_confidence(MatchEvidence::cert_bare))
      .end_object()
      .field("mean_confidence", diff.mean_match_confidence())
      .end_object();
  matrix("mode_transitions", diff.mode_transitions, kModeBuckets);
  matrix("policy_transitions", diff.policy_transitions, kPolicyBuckets);
  json.key("deprecated")
      .begin_object()
      .field("retained", diff.deprecated_retained)
      .field("dropped", diff.deprecated_dropped)
      .field("adopted", diff.deprecated_adopted)
      .end_object();
  json.key("anonymous")
      .begin_object()
      .field("retained", diff.anonymous_retained)
      .field("dropped", diff.anonymous_dropped)
      .field("adopted", diff.anonymous_adopted)
      .end_object();
  json.key("certificates")
      .begin_object()
      .field("verbatim", diff.certs_verbatim)
      .field("renewed", diff.certs_renewed)
      .field("rotated", diff.certs_rotated)
      .field("gained", diff.certs_gained)
      .field("lost", diff.certs_lost)
      .field("absent", diff.certs_absent)
      .end_object();
  json.key("deficiency")
      .begin_object()
      .field("still_deficient", diff.still_deficient)
      .field("remediated", diff.remediated)
      .field("regressed", diff.regressed)
      .field("never_deficient", diff.never_deficient)
      .end_object();
}

std::string campaign_diff_json(const CampaignDiff& diff) {
  JsonWriter json;
  json.begin_object();
  append_campaign_diff_fields(json, diff);
  json.end_object();
  return json.str();
}

}  // namespace opcua_study
