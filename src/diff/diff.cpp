// Streaming implementation of the cross-campaign matcher and diff report.
//
// Determinism rests on two invariants mirrored from the Aggregator:
// posture partials are produced by workers in any order but concatenated
// in chunk-index order (so the posture vectors are record-ordered), and
// every matching pass iterates those vectors front to back — ties and
// duplicates therefore resolve identically for any thread count.
#include "diff/diff.hpp"

#include <unordered_map>

#include "report/json.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

namespace {

/// Compact per-host summary: everything the matcher and the transition
/// tallies need, nothing else. Fingerprints are the first 8 bytes of the
/// SHA-1 thumbprint — 64 bits is collision-free in practice at study
/// scale and keeps two million summaries far below the decoded records.
struct HostPosture {
  Ipv4 ip = 0;
  std::uint16_t port = 0;
  std::uint8_t mode_bucket = 0;    // index into kModeBuckets
  std::uint8_t policy_bucket = 0;  // index into kPolicyBuckets
  bool supports_deprecated = false;
  bool anonymous = false;
  bool deficient = false;
  std::vector<std::uint64_t> fps;  // sorted, deduplicated
};

std::uint64_t fingerprint64(const Bytes& der) {
  const Bytes thumb = x509_thumbprint(der);
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < 8 && i < thumb.size(); ++i) fp = fp << 8 | thumb[i];
  return fp;
}

HostPosture absorb(const HostScanRecord& host) {
  HostPosture p;
  p.ip = host.ip;
  p.port = host.port;

  MessageSecurityMode strongest_mode = MessageSecurityMode::Invalid;
  for (const auto mode : host.advertised_modes()) {
    if (security_mode_rank(mode) > security_mode_rank(strongest_mode)) strongest_mode = mode;
  }
  switch (strongest_mode) {
    case MessageSecurityMode::Sign: p.mode_bucket = 1; break;
    case MessageSecurityMode::SignAndEncrypt: p.mode_bucket = 2; break;
    default: p.mode_bucket = 0; break;  // None or no endpoints
  }

  const SecurityPolicy max = strongest_policy(host);
  const auto& info = policy_info(max);
  p.policy_bucket = info.secure ? 2 : info.deprecated ? 1 : 0;
  for (const auto policy : host.advertised_policies()) {
    p.supports_deprecated |= policy_info(policy).deprecated;
  }
  p.anonymous = host.anonymous_offered;
  // The paper's §5.2 deficiency definition — the assess/ reference helper,
  // so the diff can never drift from the per-campaign analyses.
  p.deficient = is_deficient(host);

  for (const auto& der : host.distinct_certificates()) p.fps.push_back(fingerprint64(der));
  std::sort(p.fps.begin(), p.fps.end());
  p.fps.erase(std::unique(p.fps.begin(), p.fps.end()), p.fps.end());
  return p;
}

/// Posture pass over a campaign's final measurement: chunk-parallel
/// absorb, chunk-ordered concatenation.
std::vector<HostPosture> collect_postures(const RecordSource& source, ThreadPool& pool) {
  const std::size_t final_week = source.week_count() - 1;
  std::vector<std::size_t> final_chunks;
  for (std::size_t c = 0; c < source.chunk_count(); ++c) {
    if (source.chunk_week(c) == final_week) final_chunks.push_back(c);
  }
  std::vector<std::vector<HostPosture>> partials(final_chunks.size());
  pool.parallel_for(final_chunks.size(), [&](std::size_t i) {
    source.visit_chunk(final_chunks[i],
                       [&](const HostScanRecord& host) { partials[i].push_back(absorb(host)); });
  });
  std::vector<HostPosture> postures;
  postures.reserve(source.week_meta(final_week).host_count);
  for (auto& partial : partials) {
    for (auto& p : partial) postures.push_back(std::move(p));
  }
  return postures;
}

std::uint64_t address_key(const HostPosture& p) {
  return static_cast<std::uint64_t>(p.ip) << 16 | p.port;
}

void validate_pairing(const SnapshotMeta& base, const SnapshotMeta& followup) {
  const bool base_declared = !base.campaign_label.empty() || base.campaign_epoch_days != 0;
  const bool followup_declared =
      !followup.campaign_label.empty() || followup.campaign_epoch_days != 0;
  if (!base_declared || !followup_declared) return;  // legacy inputs: nothing to check
  if (base.campaign_epoch_days != 0 && followup.campaign_epoch_days != 0 &&
      followup.campaign_epoch_days <= base.campaign_epoch_days) {
    throw SnapshotError("campaign pairing: follow-up campaign '" + followup.campaign_label +
                        "' (epoch " + std::to_string(followup.campaign_epoch_days) +
                        ") is not after base campaign '" + base.campaign_label + "' (epoch " +
                        std::to_string(base.campaign_epoch_days) + ")");
  }
  if (base.campaign_label == followup.campaign_label &&
      base.campaign_epoch_days == followup.campaign_epoch_days) {
    throw SnapshotError("campaign pairing: both inputs declare the same campaign '" +
                        base.campaign_label + "'");
  }
}

}  // namespace

std::uint64_t TransitionMatrix::total() const {
  std::uint64_t sum = 0;
  for (const auto& row : counts) {
    for (const std::uint64_t c : row) sum += c;
  }
  return sum;
}

std::uint64_t TransitionMatrix::upgraded() const {
  std::uint64_t sum = 0;
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = from + 1; to < 3; ++to) sum += counts[from][to];
  }
  return sum;
}

std::uint64_t TransitionMatrix::downgraded() const {
  std::uint64_t sum = 0;
  for (std::size_t from = 0; from < 3; ++from) {
    for (std::size_t to = 0; to < from; ++to) sum += counts[from][to];
  }
  return sum;
}

bool CampaignDiff::counts_equal(const CampaignDiff& other) const {
  auto strip = [](CampaignDiff d) {
    d.base_week.campaign_label.clear();
    d.base_week.campaign_epoch_days = 0;
    d.followup_week.campaign_label.clear();
    d.followup_week.campaign_epoch_days = 0;
    return d;
  };
  return strip(*this) == strip(other);
}

CampaignDiff diff_campaigns(const RecordSource& base, const RecordSource& followup,
                            const DiffOptions& options) {
  if (base.week_count() == 0 || followup.week_count() == 0) {
    throw SnapshotError("campaign diff needs >= 1 measurement per campaign");
  }
  CampaignDiff diff;
  diff.base_week = base.week_meta(base.week_count() - 1);
  diff.followup_week = followup.week_meta(followup.week_count() - 1);
  if (options.validate_pairing) validate_pairing(diff.base_week, diff.followup_week);

  ThreadPool pool(options.threads);
  const std::vector<HostPosture> a = collect_postures(base, pool);
  const std::vector<HostPosture> b = collect_postures(followup, pool);
  diff.base_hosts = a.size();
  diff.followup_hosts = b.size();

  // ---- pass 1: match by address -----------------------------------------
  std::unordered_map<std::uint64_t, std::uint32_t> base_by_address;
  base_by_address.reserve(a.size());
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    base_by_address.emplace(address_key(a[i]), i);  // first record wins
  }
  constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> match_of(b.size(), kUnmatched);
  std::vector<bool> base_used(a.size(), false);
  std::vector<bool> cert_matched(b.size(), false);
  for (std::uint32_t bi = 0; bi < b.size(); ++bi) {
    const auto it = base_by_address.find(address_key(b[bi]));
    if (it == base_by_address.end() || base_used[it->second]) continue;
    match_of[bi] = it->second;
    base_used[it->second] = true;
  }

  // ---- pass 2: re-identify churned hosts by certificate fingerprint ----
  // A fingerprint is a usable identity only when it points at exactly one
  // unmatched host on each side; reused certificates identify nobody.
  struct FpSlot {
    std::uint32_t count = 0;
    std::uint32_t index = 0;
  };
  std::unordered_map<std::uint64_t, FpSlot> base_fps;
  for (std::uint32_t ai = 0; ai < a.size(); ++ai) {
    if (base_used[ai]) continue;
    for (const std::uint64_t fp : a[ai].fps) {
      FpSlot& slot = base_fps[fp];
      ++slot.count;
      slot.index = ai;
    }
  }
  std::unordered_map<std::uint64_t, std::uint32_t> followup_fp_count;
  for (std::uint32_t bi = 0; bi < b.size(); ++bi) {
    if (match_of[bi] != kUnmatched) continue;
    for (const std::uint64_t fp : b[bi].fps) ++followup_fp_count[fp];
  }
  for (std::uint32_t bi = 0; bi < b.size(); ++bi) {
    if (match_of[bi] != kUnmatched) continue;
    for (const std::uint64_t fp : b[bi].fps) {
      const auto it = base_fps.find(fp);
      if (it == base_fps.end() || it->second.count != 1) continue;
      if (followup_fp_count[fp] != 1 || base_used[it->second.index]) continue;
      match_of[bi] = it->second.index;
      base_used[it->second.index] = true;
      cert_matched[bi] = true;
      break;
    }
  }

  // ---- tally ------------------------------------------------------------
  for (std::uint32_t bi = 0; bi < b.size(); ++bi) {
    if (match_of[bi] == kUnmatched) {
      ++diff.arrived;
      continue;
    }
    const HostPosture& from = a[match_of[bi]];
    const HostPosture& to = b[bi];
    if (cert_matched[bi]) {
      ++diff.matched_by_certificate;
    } else {
      ++diff.matched_by_address;
    }
    ++diff.mode_transitions.counts[from.mode_bucket][to.mode_bucket];
    ++diff.policy_transitions.counts[from.policy_bucket][to.policy_bucket];

    if (from.supports_deprecated && to.supports_deprecated) ++diff.deprecated_retained;
    if (from.supports_deprecated && !to.supports_deprecated) ++diff.deprecated_dropped;
    if (!from.supports_deprecated && to.supports_deprecated) ++diff.deprecated_adopted;
    if (from.anonymous && to.anonymous) ++diff.anonymous_retained;
    if (from.anonymous && !to.anonymous) ++diff.anonymous_dropped;
    if (!from.anonymous && to.anonymous) ++diff.anonymous_adopted;

    if (from.fps.empty() && to.fps.empty()) {
      ++diff.certs_absent;
    } else if (from.fps == to.fps) {
      ++diff.certs_verbatim;
    } else if (from.fps.empty()) {
      ++diff.certs_gained;
    } else if (to.fps.empty()) {
      ++diff.certs_lost;
    } else {
      bool overlap = false;
      for (const std::uint64_t fp : to.fps) {
        overlap |= std::binary_search(from.fps.begin(), from.fps.end(), fp);
      }
      if (overlap) {
        ++diff.certs_rotated;
      } else {
        ++diff.certs_renewed;
      }
    }

    if (from.deficient && to.deficient) ++diff.still_deficient;
    if (from.deficient && !to.deficient) ++diff.remediated;
    if (!from.deficient && to.deficient) ++diff.regressed;
    if (!from.deficient && !to.deficient) ++diff.never_deficient;
  }
  for (std::uint32_t ai = 0; ai < a.size(); ++ai) diff.retired += !base_used[ai];
  return diff;
}

CampaignDiff diff_files(const std::string& base_path, std::uint64_t base_seed,
                        const std::string& followup_path, std::uint64_t followup_seed,
                        const DiffOptions& options) {
  const SnapshotReader base(base_path, base_seed);
  const SnapshotReader followup(followup_path, followup_seed);
  return diff_campaigns(ReaderRecordSource(base), ReaderRecordSource(followup), options);
}

CampaignDiff diff_snapshots(const std::vector<ScanSnapshot>& base,
                            const std::vector<ScanSnapshot>& followup,
                            const DiffOptions& options) {
  return diff_campaigns(SnapshotVectorSource(base, options.chunk_records),
                        SnapshotVectorSource(followup, options.chunk_records), options);
}

std::string campaign_diff_json(const CampaignDiff& diff) {
  JsonWriter json;
  auto campaign = [&](const char* key, const SnapshotMeta& week, std::uint64_t hosts) {
    json.key(key)
        .begin_object()
        .field("label", week.campaign_label)
        .field("epoch_days", static_cast<std::uint64_t>(week.campaign_epoch_days))
        .field("date_days", static_cast<std::uint64_t>(week.date_days))
        .field("hosts", hosts)
        .end_object();
  };
  auto matrix = [&](const char* key, const TransitionMatrix& m, const char* const buckets[3]) {
    json.key(key).begin_object().key("buckets").begin_array();
    for (std::size_t i = 0; i < 3; ++i) json.value(buckets[i]);
    json.end_array().key("counts").begin_array();
    for (std::size_t from = 0; from < 3; ++from) {
      json.begin_array();
      for (std::size_t to = 0; to < 3; ++to) json.value(m.counts[from][to]);
      json.end_array();
    }
    json.end_array()
        .field("upgraded", m.upgraded())
        .field("downgraded", m.downgraded())
        .end_object();
  };
  json.begin_object();
  campaign("base", diff.base_week, diff.base_hosts);
  campaign("followup", diff.followup_week, diff.followup_hosts);
  json.key("population")
      .begin_object()
      .field("matched_by_address", diff.matched_by_address)
      .field("matched_by_certificate", diff.matched_by_certificate)
      .field("retired", diff.retired)
      .field("arrived", diff.arrived)
      .end_object();
  matrix("mode_transitions", diff.mode_transitions, kModeBuckets);
  matrix("policy_transitions", diff.policy_transitions, kPolicyBuckets);
  json.key("deprecated")
      .begin_object()
      .field("retained", diff.deprecated_retained)
      .field("dropped", diff.deprecated_dropped)
      .field("adopted", diff.deprecated_adopted)
      .end_object();
  json.key("anonymous")
      .begin_object()
      .field("retained", diff.anonymous_retained)
      .field("dropped", diff.anonymous_dropped)
      .field("adopted", diff.anonymous_adopted)
      .end_object();
  json.key("certificates")
      .begin_object()
      .field("verbatim", diff.certs_verbatim)
      .field("renewed", diff.certs_renewed)
      .field("rotated", diff.certs_rotated)
      .field("gained", diff.certs_gained)
      .field("lost", diff.certs_lost)
      .field("absent", diff.certs_absent)
      .end_object();
  json.key("deficiency")
      .begin_object()
      .field("still_deficient", diff.still_deficient)
      .field("remediated", diff.remediated)
      .field("regressed", diff.regressed)
      .field("never_deficient", diff.never_deficient)
      .end_object();
  json.end_object();
  return json.str();
}

}  // namespace opcua_study
