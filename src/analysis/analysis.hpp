// Shared analysis library — every figure/table of the paper computed in
// one pass framework over a *stream* of host records.
//
// The assess/ layer holds the reference per-snapshot implementations (one
// function per figure, whole snapshot in RAM). This library computes the
// same statistics — bit-identical, the tests assert it — from a chunked
// record stream in bounded memory: chunk partials are aggregated by
// thread-pool workers and merged in chunk-index order, so the result is
// independent of thread count and scheduling. That is what lets one
// Aggregator serve the 1k-host paper reproduction and a million-host
// follow-up campaign alike (cf. Dahlmanns et al., PAM 2022).
//
// Pass structure:
//   pass 1  census of the final measurement's certificates (reuse
//           clusters; optionally the RSA modulus corpus for §5.3)
//   pass 2  everything else: per-week tallies, the final measurement's
//           figure statistics (which need the pass-1 reuse sets), and the
//           cross-week host history for renewal detection
//   finalize  ordered merges -> StudyAnalysis
#pragma once

#include <cstdint>

#include "assess/assess.hpp"
#include "scanner/snapshot_io.hpp"

namespace opcua_study {

struct AnalysisOptions {
  /// Worker threads for chunk aggregation; 0 = hardware concurrency,
  /// 1 = inline on the caller. The result is identical for any value.
  int threads = 1;
  /// Run the §5.3 batch-GCD shared-prime sweep (expensive at scale).
  bool shared_primes = false;
  /// Worker threads for the batch-GCD product/remainder trees (0 =
  /// hardware concurrency, matching the reference assess_shared_primes).
  int shared_prime_threads = 0;
  /// Chunk size used when aggregating in-memory snapshots (streams from
  /// a SnapshotReader use the chunking recorded in the file).
  std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords;
};

/// Scan-quality tallies of one measurement: how completely the grabs ran
/// once fault injection (netsim/faults.hpp) is in play. All-zero fault
/// counters and all-complete grades on fault-free data.
struct ScanQualityWeek {
  int measurement_index = 0;
  std::uint64_t hosts = 0;        // records, including discovery servers
  std::uint64_t complete = 0;     // per ProbeOutcome grade
  std::uint64_t truncated = 0;
  std::uint64_t degraded = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t faulted = 0;      // hosts that saw >= 1 injected fault
  std::uint64_t recovered = 0;    // faulted hosts still graded complete
  std::uint64_t retries = 0;      // retry attempts across all hosts
  std::uint64_t fault_events = 0; // injected faults across all hosts

  friend bool operator==(const ScanQualityWeek&, const ScanQualityWeek&) = default;
};

/// Scan-quality section of a study: per-week tallies plus study totals.
struct ScanQualityStats {
  std::vector<ScanQualityWeek> weeks;
  std::uint64_t hosts = 0, complete = 0, truncated = 0, degraded = 0, unreachable = 0;
  std::uint64_t faulted = 0, recovered = 0, retries = 0, fault_events = 0;
  /// recovered / faulted; 1.0 when nothing faulted (a fault-free campaign
  /// trivially recovered everything).
  double recovery_rate = 1.0;

  friend bool operator==(const ScanQualityStats&, const ScanQualityStats&) = default;
};

/// Every statistic the benches/examples render, computed together.
/// Figure/table members cover the final measurement (the paper's headline
/// 2020-08-30 snapshot); `longitudinal` covers all measurements.
struct StudyAnalysis {
  std::vector<SnapshotMeta> weeks;

  ModePolicyStats modes;              // Fig. 3
  CertConformanceStats certificates;  // Fig. 4
  ReuseStats reuse;                   // Fig. 5
  SharedPrimeStats shared_primes;     // §5.3 (only when options request it)
  AuthStats auth;                     // Fig. 6 / Table 2
  AccessRightsStats access_rights;    // Fig. 7
  DeficitBreakdown deficits;          // Fig. 8
  LongitudinalStats longitudinal;     // Fig. 2 / §5.5
  ScanQualityStats scan_quality;      // fault/retry/recovery rates
  ProtocolStats protocols;            // per-protocol population split

  double shared_prime_seconds = 0;  // batch-GCD wall time, 0 if skipped

  /// Figure-output identity, ignoring the timing field — the invariant
  /// the determinism tests and the pipeline bench assert.
  bool figures_equal(const StudyAnalysis& other) const;
};

/// A source of record chunks the Aggregator can drain. Chunk index order
/// defines the canonical record order (ascending week, then record order
/// within the week); visit_chunk must be const-thread-safe.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual std::size_t week_count() const = 0;
  virtual SnapshotMeta week_meta(std::size_t week) const = 0;
  virtual std::size_t chunk_count() const = 0;
  virtual std::size_t chunk_week(std::size_t chunk) const = 0;
  virtual void visit_chunk(std::size_t chunk,
                           const std::function<void(const HostScanRecord&)>& fn) const = 0;
  /// Non-null when chunk indices can also be served as zero-copy v6
  /// ColumnViews (reader.column_view(chunk)). Consumers that have a
  /// columnar fast path use it; everyone else keeps calling visit_chunk.
  virtual const SnapshotReader* columnar_reader() const { return nullptr; }
};

/// Adapters.
class ReaderRecordSource final : public RecordSource {
 public:
  explicit ReaderRecordSource(const SnapshotReader& reader) : reader_(reader) {}
  std::size_t week_count() const override { return reader_.snapshots().size(); }
  SnapshotMeta week_meta(std::size_t week) const override { return reader_.snapshots()[week]; }
  std::size_t chunk_count() const override { return reader_.chunks().size(); }
  std::size_t chunk_week(std::size_t chunk) const override {
    return reader_.chunks()[chunk].snapshot_ordinal;
  }
  void visit_chunk(std::size_t chunk,
                   const std::function<void(const HostScanRecord&)>& fn) const override;
  const SnapshotReader* columnar_reader() const override {
    return reader_.columnar() ? &reader_ : nullptr;
  }

 private:
  const SnapshotReader& reader_;
};

class SnapshotVectorSource final : public RecordSource {
 public:
  SnapshotVectorSource(const std::vector<ScanSnapshot>& snapshots, std::uint32_t chunk_records);
  std::size_t week_count() const override { return snapshots_.size(); }
  SnapshotMeta week_meta(std::size_t week) const override;
  std::size_t chunk_count() const override { return chunks_.size(); }
  std::size_t chunk_week(std::size_t chunk) const override { return chunks_[chunk].week; }
  void visit_chunk(std::size_t chunk,
                   const std::function<void(const HostScanRecord&)>& fn) const override;

 private:
  struct Span {
    std::size_t week, first, count;
  };
  const std::vector<ScanSnapshot>& snapshots_;
  std::vector<Span> chunks_;
};

/// Entry points. analyze_file/analyze_reader stream chunk-by-chunk and
/// never materialize a full snapshot; analyze_snapshots serves callers
/// that already hold the vector (and the equivalence tests).
StudyAnalysis analyze_source(const RecordSource& source, const AnalysisOptions& options = {});
StudyAnalysis analyze_reader(const SnapshotReader& reader, const AnalysisOptions& options = {});
StudyAnalysis analyze_file(const std::string& path, std::uint64_t seed,
                           const AnalysisOptions& options = {});
StudyAnalysis analyze_snapshots(const std::vector<ScanSnapshot>& snapshots,
                                const AnalysisOptions& options = {});

}  // namespace opcua_study
