// Chunk-parallel implementation of the shared analysis library.
//
// Each worker aggregates whole chunks into a ChunkPartial; partials are
// merged on the caller in chunk-index order, so every statistic —
// including order-sensitive ones like the Fig. 7 fraction vectors and the
// renewal-event list — is identical to a sequential pass over the same
// records, and therefore identical to the assess/ reference functions
// (the tests pin both equalities).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <tuple>

#include "analysis/analysis.hpp"
#include "crypto/batch_gcd.hpp"
#include "obs/metrics.hpp"
#include "util/date.hpp"
#include "util/hex.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

namespace {

template <typename K, typename V>
void merge_count_map(std::map<K, V>& into, const std::map<K, V>& from) {
  for (const auto& [key, count] : from) into[key] += count;
}

// ------------------------------------------- v6 columnar fast path ----

// Everything the figure passes ever derive from a certificate, computed
// once per *dictionary entry* instead of once per host occurrence. On a
// fleet where thousands of hosts share a handful of certificates this
// removes all repeated SHA-1 thumbprints and DER parses.
struct DictCertEntry {
  std::string fp_hex;
  bool parsed = false;
  HashAlgorithm hash = HashAlgorithm::sha1;
  std::size_t key_bits = 0;
  bool self_signed = false;
  std::string org;
  std::int64_t not_before_days = 0;
  std::string modulus_hex;  // only filled when the §5.3 sweep runs
  Bignum modulus;
};

struct DictCertCache {
  std::vector<DictCertEntry> entries;

  DictCertCache(const SnapshotReader& reader, bool with_moduli) {
    entries.reserve(reader.cert_count());
    for (std::uint32_t id = 0; id < reader.cert_count(); ++id) {
      DictCertEntry entry;
      const auto der = reader.cert_der(id);
      entry.fp_hex = to_hex(x509_thumbprint(der));
      try {
        const Certificate cert = x509_parse(der);
        entry.parsed = true;
        entry.hash = cert.signature_hash;
        entry.key_bits = cert.key_bits();
        entry.self_signed = cert.self_signed();
        entry.org = cert.subject.organization;
        entry.not_before_days = cert.not_before_days;
        if (with_moduli) {
          entry.modulus_hex = cert.public_key.n.to_hex();
          entry.modulus = cert.public_key.n;
        }
      } catch (const DecodeError&) {
      }
      entries.push_back(std::move(entry));
    }
  }

  const DictCertEntry& at(std::uint32_t id) const {
    if (id >= entries.size()) {
      throw DecodeError("certificate id " + std::to_string(id) + " out of dictionary range (" +
                        std::to_string(entries.size()) + " entries)");
    }
    return entries[id];
  }

  /// Mirror of primary_certificate(): the head list is the distinct
  /// certificates in first-seen endpoint order, so the first entry that
  /// parses is the certificate the reference helper returns.
  const DictCertEntry* primary(const std::vector<std::uint32_t>& ids) const {
    for (const std::uint32_t id : ids) {
      const DictCertEntry& entry = at(id);
      if (entry.parsed) return &entry;
    }
    return nullptr;
  }
};

/// Run fn(view) over one chunk, converting cursor decode failures into the
/// same SnapshotError shape read_chunk reports.
template <typename Fn>
void visit_columnar(const SnapshotReader& reader, std::size_t chunk, Fn&& fn) {
  const ColumnView view = reader.column_view(chunk);
  try {
    fn(view);
  } catch (const DecodeError& e) {
    throw SnapshotError("corrupt chunk " + std::to_string(chunk) + " (v6, chunk at byte " +
                        std::to_string(reader.chunks()[chunk].file_offset) + "): " + e.what());
  }
}

// ------------------------------------------------- pass 1: cert census ----

/// Certificate census of the final measurement: reuse clusters over the
/// servers' distinct certificates (Fig. 5, Fig. 8 reuse sets, §5.5 fleet
/// tracking) and optionally the deduplicated RSA modulus corpus (§5.3).
struct CensusPartial {
  struct Cluster {
    int hosts = 0;
    std::set<std::uint32_t> ases;
    std::string org;
  };
  std::map<std::string, Cluster> clusters;
  std::map<std::string, Bignum> moduli;  // hex(n) -> n, deduplicated

  void absorb(const HostScanRecord& host, bool collect_moduli) {
    if (collect_moduli) {
      for (const auto& der : host.distinct_certificates()) {
        try {
          const Certificate cert = x509_parse(der);
          moduli.try_emplace(cert.public_key.n.to_hex(), cert.public_key.n);
        } catch (const DecodeError&) {
        }
      }
    }
    if (host.is_discovery_server()) return;
    for (const auto& der : host.distinct_certificates()) {
      const std::string fp = to_hex(x509_thumbprint(der));
      Cluster& cluster = clusters[fp];
      ++cluster.hosts;
      cluster.ases.insert(host.asn);
      if (cluster.org.empty()) {
        try {
          cluster.org = x509_parse(der).subject.organization;
        } catch (const DecodeError&) {
        }
      }
    }
  }

  /// Columnar mirror of absorb(): the head id list *is* the distinct
  /// certificate list (the writer interns by content), so every per-DER
  /// computation becomes a dictionary lookup.
  void absorb_columnar(const ColumnView& view, std::size_t i, const DictCertCache& cache,
                       std::vector<std::uint32_t>& ids, bool collect_moduli) {
    ids.clear();
    VarRecordCursor cursor(view.var_record(i));
    cursor.cert_ids(ids);
    if (collect_moduli) {
      for (const std::uint32_t id : ids) {
        const DictCertEntry& entry = cache.at(id);
        if (entry.parsed) moduli.try_emplace(entry.modulus_hex, entry.modulus);
      }
    }
    if (view.application_type[i] == static_cast<std::uint8_t>(ApplicationType::DiscoveryServer)) {
      return;
    }
    for (const std::uint32_t id : ids) {
      const DictCertEntry& entry = cache.at(id);
      Cluster& cluster = clusters[entry.fp_hex];
      ++cluster.hosts;
      cluster.ases.insert(view.asn[i]);
      if (cluster.org.empty()) cluster.org = entry.org;
    }
  }

  void merge(CensusPartial&& other) {
    for (auto& [fp, cluster] : other.clusters) {
      Cluster& into = clusters[fp];
      into.hosts += cluster.hosts;
      into.ases.merge(cluster.ases);
      if (into.org.empty()) into.org = std::move(cluster.org);
    }
    moduli.merge(other.moduli);
  }
};

/// Fingerprint sets derived from the census before pass 2 runs.
struct FinalWeekSets {
  std::set<std::string> reused_fps;       // certificates on >= 3 hosts (Fig. 8)
  std::set<std::string> big_cluster_fps;  // the distributor fleet (§5.5)
};

// ---------------------------------------------- pass 2: chunk partials ----

/// Everything one chunk of records contributes. A chunk belongs to exactly
/// one measurement; the final measurement's chunks additionally feed the
/// figure statistics.
struct ChunkPartial {
  // Weekly tallies (Fig. 2 / §5.5), servers unless noted.
  int servers = 0, discovery = 0, via_reference = 0, non_default_port = 0, deficient = 0;
  int reuse_devices = 0;
  std::map<std::string, int> by_manufacturer;

  // Cross-week certificate corpus and per-host history (record order).
  std::map<std::string, std::pair<HashAlgorithm, std::int64_t>> corpus;
  struct HostObs {
    Ipv4 ip = 0;
    std::uint16_t port = 0;
    std::set<std::string> fps;
    std::map<std::string, HashAlgorithm> hashes;
    std::string software;
  };
  std::vector<HostObs> history;

  // Scan quality (fault-injection resilience; all zero on fault-free data).
  std::uint64_t q_hosts = 0, q_complete = 0, q_truncated = 0, q_degraded = 0, q_unreachable = 0;
  std::uint64_t q_faulted = 0, q_recovered = 0, q_retries = 0, q_fault_events = 0;

  // Per-protocol population split. proto_hosts covers every record (like
  // the quality tallies); the final-week maps cover servers only.
  std::map<ProtocolId, std::uint64_t> proto_hosts;
  std::map<ProtocolId, std::uint64_t> proto_servers, proto_deficient, proto_anonymous;

  // Final-measurement figures.
  ModePolicyStats modes;
  CertConformanceStats certs;
  std::map<std::tuple<bool, bool, bool, bool>, AuthRow> auth_rows;
  AuthStats auth;  // scalar fields; rows assembled at finalize
  AccessRightsStats access;
  DeficitBreakdown deficits;

  /// Quality tallies cover *every* record (discovery servers included —
  /// the section measures the scan process, not the server population).
  void absorb_quality(std::uint8_t completeness, std::uint16_t retries, std::uint16_t faults) {
    if (completeness > 3) {
      throw DecodeError("snapshot record: invalid completeness value " +
                        std::to_string(completeness));
    }
    ++q_hosts;
    switch (completeness) {
      case 0: ++q_complete; break;
      case 1: ++q_truncated; break;
      case 2: ++q_degraded; break;
      default: ++q_unreachable; break;
    }
    q_retries += retries;
    q_fault_events += faults;
    if (faults > 0) {
      ++q_faulted;
      if (completeness == 0) ++q_recovered;
    }
  }

  void absorb(const HostScanRecord& host, bool final_week, const FinalWeekSets& sets) {
    absorb_quality(static_cast<std::uint8_t>(host.completeness), host.retries,
                   host.fault_events);
    proto_hosts[host.protocol]++;
    // Fig. 7 is the one figure with no discovery-server filter (the
    // reference assess_access_rights keys on session outcome alone).
    if (final_week && host.session == SessionOutcome::accessible) {
      int vars = 0, readable = 0, writable = 0, methods = 0, executable = 0;
      for (const auto& node : host.nodes) {
        if (node.node_class == NodeClass::Variable) {
          ++vars;
          readable += node.readable;
          writable += node.writable;
        } else if (node.node_class == NodeClass::Method) {
          ++methods;
          executable += node.executable;
        }
      }
      if (vars > 0) {
        access.read_fractions.push_back(static_cast<double>(readable) / vars);
        access.write_fractions.push_back(static_cast<double>(writable) / vars);
      }
      if (methods > 0) {
        access.exec_fractions.push_back(static_cast<double>(executable) / methods);
      }
    }

    const std::string cluster = manufacturer_cluster(host.application_uri);
    if (host.is_discovery_server()) {
      ++discovery;
      return;
    }
    ++servers;
    by_manufacturer[cluster]++;
    via_reference += host.found_via_reference;
    non_default_port += host.port != kOpcUaDefaultPort;

    const SecurityPolicy max = strongest_policy(host);
    const auto cert = primary_certificate(host);
    const bool cert_too_weak =
        cert && max != SecurityPolicy::None &&
        classify_certificate(max, cert->signature_hash, cert->key_bits()) ==
            CertConformance::too_weak;
    const bool host_deficient = max == SecurityPolicy::None || policy_info(max).deprecated ||
                                cert_too_weak || host.anonymous_offered;
    deficient += host_deficient;
    if (final_week) {
      proto_servers[host.protocol]++;
      if (host_deficient) proto_deficient[host.protocol]++;
      if (host.anonymous_offered) proto_anonymous[host.protocol]++;
    }

    // History / corpus / fleet membership (§5.5).
    HostObs obs;
    obs.ip = host.ip;
    obs.port = host.port;
    obs.software = host.software_version;
    const std::vector<Bytes> ders = host.distinct_certificates();
    std::vector<std::string> fps;  // one thumbprint per DER, computed once
    fps.reserve(ders.size());
    bool in_big_cluster = false;
    for (const auto& der : ders) {
      const std::string& fp = fps.emplace_back(to_hex(x509_thumbprint(der)));
      obs.fps.insert(fp);
      try {
        const Certificate parsed = x509_parse(der);
        obs.hashes[fp] = parsed.signature_hash;
        corpus.try_emplace(fp, parsed.signature_hash, parsed.not_before_days);
      } catch (const DecodeError&) {
      }
      if (sets.big_cluster_fps.contains(fp)) in_big_cluster = true;
    }
    reuse_devices += in_big_cluster;
    history.push_back(std::move(obs));

    if (!final_week) return;

    // ----- Fig. 3: security modes and policies --------------------------
    ++modes.servers;
    const auto advertised_modes = host.advertised_modes();
    MessageSecurityMode weakest_mode = MessageSecurityMode::Invalid;
    MessageSecurityMode strongest_mode = MessageSecurityMode::Invalid;
    for (const auto mode : advertised_modes) {
      modes.mode_support[mode]++;
      if (weakest_mode == MessageSecurityMode::Invalid ||
          security_mode_rank(mode) < security_mode_rank(weakest_mode)) {
        weakest_mode = mode;
      }
      if (security_mode_rank(mode) > security_mode_rank(strongest_mode)) strongest_mode = mode;
    }
    if (weakest_mode != MessageSecurityMode::Invalid) modes.mode_least[weakest_mode]++;
    if (strongest_mode != MessageSecurityMode::Invalid) modes.mode_most[strongest_mode]++;
    if (strongest_mode == MessageSecurityMode::None) ++modes.none_only;
    if (security_mode_rank(strongest_mode) >= security_mode_rank(MessageSecurityMode::Sign)) {
      ++modes.secure_mode_capable;
    }

    const auto policies = host.advertised_policies();
    SecurityPolicy weakest = SecurityPolicy::None;
    SecurityPolicy strongest = SecurityPolicy::None;
    int weakest_rank = 1000, strongest_rank = -1;
    bool any_deprecated = false;
    for (const auto policy : policies) {
      modes.policy_support[policy]++;
      const auto& info = policy_info(policy);
      any_deprecated |= info.deprecated;
      if (info.rank < weakest_rank) {
        weakest_rank = info.rank;
        weakest = policy;
      }
      if (info.rank > strongest_rank) {
        strongest_rank = info.rank;
        strongest = policy;
      }
    }
    if (!policies.empty()) {
      modes.policy_least[weakest]++;
      modes.policy_most[strongest]++;
      if (policy_info(weakest).secure) ++modes.strong_enforcing;
      if (policy_info(strongest).secure) ++modes.strong_capable;
      if (policy_info(strongest).deprecated) ++modes.deprecated_max;
    }
    modes.deprecated_supported += any_deprecated;

    // ----- Fig. 4: certificate conformance ------------------------------
    if (cert) {
      ++certs.hosts_with_cert;
      if (!cert->self_signed()) ++certs.ca_signed;
      const CertClassKey key{cert->signature_hash, cert->key_bits()};
      for (const auto policy : policies) {
        certs.class_counts[policy][key]++;
        certs.announced_with_cert[policy]++;
        switch (classify_certificate(policy, cert->signature_hash, cert->key_bits())) {
          case CertConformance::too_weak: certs.too_weak[policy]++; break;
          case CertConformance::too_strong: certs.too_strong[policy]++; break;
          case CertConformance::conformant: break;
        }
      }
      if (cert_too_weak) ++certs.weaker_than_max;
    }

    // ----- Fig. 6 / Table 2: authentication -----------------------------
    ++auth.servers;
    AuthRow probe;
    for (const auto token : host.advertised_token_types()) {
      switch (token) {
        case UserTokenType::Anonymous: probe.anonymous = true; break;
        case UserTokenType::UserName: probe.credentials = true; break;
        case UserTokenType::Certificate: probe.certificate = true; break;
        case UserTokenType::IssuedToken: probe.token = true; break;
      }
    }
    AuthRow& row = auth_rows.try_emplace(probe.key(), probe).first->second;
    const bool sc_rejected =
        host.channel == ChannelOutcome::cert_rejected || host.channel == ChannelOutcome::failed;
    if (sc_rejected) {
      ++auth.channel_rejected;
      ++row.channel_rejected;
    } else {
      ++auth.channel_capable;
    }
    if (probe.anonymous) {
      ++auth.anonymous_offered;
      if (!sc_rejected) ++auth.anonymous_channel_capable;
      bool none_mode = false;
      for (const auto mode : advertised_modes) none_mode |= mode == MessageSecurityMode::None;
      if (!none_mode) ++auth.anonymous_secure_only;
    }
    if (host.session == SessionOutcome::accessible) {
      ++auth.accessible;
      switch (classify_namespaces(host.namespaces)) {
        case SystemClass::production:
          ++auth.production;
          ++row.production;
          break;
        case SystemClass::test:
          ++auth.test;
          ++row.test;
          break;
        case SystemClass::unclassified:
          ++auth.unclassified;
          ++row.unclassified;
          break;
      }
    } else if (!sc_rejected) {
      ++auth.auth_rejected;
      ++row.auth_rejected;
    }

    // ----- Fig. 8: deficit breakdown ------------------------------------
    ++deficits.servers;
    auto tally = [&](const char* deficit) {
      deficits.by_manufacturer[deficit][cluster]++;
      deficits.by_as[deficit][host.asn]++;
    };
    if (max == SecurityPolicy::None) {
      ++deficits.none_only;
      tally("None");
    }
    if (max != SecurityPolicy::None && policy_info(max).deprecated) {
      ++deficits.deprecated_only;
      tally("Deprecated Policies");
    }
    if (cert_too_weak) {
      ++deficits.weak_certificate;
      tally("Too Weak Certificate");
    }
    bool reused = false;
    for (const auto& fp : fps) {
      if (sets.reused_fps.contains(fp)) reused = true;
    }
    if (reused) {
      ++deficits.cert_reuse;
      tally("Certificate Reuse");
    }
    if (host.anonymous_offered) {
      ++deficits.anonymous_access;
      tally("Anonymous Access");
    }
    if (host_deficient) ++deficits.deficient_total;
  }

  /// Columnar mirror of absorb() for v6 chunks: scalar figures come from
  /// the fixed columns, identity strings and cert ids from a lazy cursor
  /// over the var record, and per-certificate facts from the dictionary
  /// cache. Mask iteration runs in enum order, which is equivalent to the
  /// record path's first-seen endpoint order because every mode/policy has
  /// a distinct rank and no endpoint ever advertises Invalid mode.
  void absorb_columnar(const ColumnView& view, std::size_t i, const DictCertCache& cache,
                       std::vector<std::uint32_t>& ids, bool final_week,
                       const FinalWeekSets& sets) {
    const std::uint8_t host_flags = view.flags[i];
    // Fixed-position tails at the end of the var slice, peeled innermost
    // last: [quality 5B][protocol 1B]. Neither needs a cursor walk.
    const std::uint32_t var_begin = view.var_offsets[i];
    std::uint32_t tail_end = view.var_offsets[i + 1];
    ProtocolId protocol = ProtocolId::opcua;
    if (host_flags & snapshot_flags::kProtocol) {
      if (tail_end == var_begin) {
        throw DecodeError("var record too short for its protocol tail");
      }
      const std::uint8_t p = view.var_blob[tail_end - 1];
      if (p == 0) {
        throw DecodeError(
            "snapshot record: zero protocol tail byte (non-canonical; OPC UA records carry no "
            "protocol tail)");
      }
      if (p >= kProtocolCount) {
        throw DecodeError("snapshot record: invalid protocol value " + std::to_string(p));
      }
      protocol = static_cast<ProtocolId>(p);
      --tail_end;
    }
    std::uint8_t q_completeness = 0;
    std::uint16_t q_rec_retries = 0, q_rec_faults = 0;
    if (host_flags & snapshot_flags::kScanQuality) {
      if (tail_end - var_begin < 5) {
        throw DecodeError("var record too short for its scan-quality tail");
      }
      const std::uint8_t* t = view.var_blob.data() + tail_end - 5;
      q_completeness = t[0];
      q_rec_retries = static_cast<std::uint16_t>(t[1] | (t[2] << 8));
      q_rec_faults = static_cast<std::uint16_t>(t[3] | (t[4] << 8));
    }
    absorb_quality(q_completeness, q_rec_retries, q_rec_faults);
    proto_hosts[protocol]++;
    const bool anonymous_offered = (host_flags & snapshot_flags::kAnonymousOffered) != 0;
    const bool is_discovery = view.application_type[i] ==
                              static_cast<std::uint8_t>(ApplicationType::DiscoveryServer);
    const bool accessible =
        view.session[i] == static_cast<std::uint8_t>(SessionOutcome::accessible);

    // Var-column reads happen up front in stage order; the figure logic
    // below then mirrors absorb() statement for statement (within one host
    // every statistic is a pure accumulation, so ordering is free).
    ids.clear();
    VarRecordCursor cursor(view.var_record(i));
    std::string app_uri;
    std::string software;
    std::vector<std::string> nss;
    if (!is_discovery) {
      cursor.cert_ids(ids);
      app_uri = cursor.application_uri();
      software = cursor.software_version();
      if (final_week && accessible) nss = cursor.namespaces();
    }
    if (final_week && accessible) {
      int vars = 0, readable = 0, writable = 0, methods = 0, executable = 0;
      cursor.visit_nodes([&](NodeClass node_class, bool r, bool w, bool x) {
        if (node_class == NodeClass::Variable) {
          ++vars;
          readable += r;
          writable += w;
        } else if (node_class == NodeClass::Method) {
          ++methods;
          executable += x;
        }
      });
      if (vars > 0) {
        access.read_fractions.push_back(static_cast<double>(readable) / vars);
        access.write_fractions.push_back(static_cast<double>(writable) / vars);
      }
      if (methods > 0) {
        access.exec_fractions.push_back(static_cast<double>(executable) / methods);
      }
    }

    if (is_discovery) {
      ++discovery;
      return;
    }
    ++servers;
    const std::string cluster = manufacturer_cluster(app_uri);
    by_manufacturer[cluster]++;
    via_reference += (host_flags & snapshot_flags::kFoundViaReference) != 0;
    non_default_port += view.port[i] != kOpcUaDefaultPort;

    const std::uint8_t policy_mask = view.policy_mask[i];
    SecurityPolicy max = SecurityPolicy::None;
    for (int code = 0; code <= 5; ++code) {
      // Table rank order equals enum order, so the highest set bit wins.
      if (policy_mask & (1u << code)) max = static_cast<SecurityPolicy>(code);
    }
    const DictCertEntry* cert = cache.primary(ids);
    const bool cert_too_weak =
        cert && max != SecurityPolicy::None &&
        classify_certificate(max, cert->hash, cert->key_bits) == CertConformance::too_weak;
    const bool host_deficient = max == SecurityPolicy::None || policy_info(max).deprecated ||
                                cert_too_weak || anonymous_offered;
    deficient += host_deficient;
    if (final_week) {
      proto_servers[protocol]++;
      if (host_deficient) proto_deficient[protocol]++;
      if (anonymous_offered) proto_anonymous[protocol]++;
    }

    // History / corpus / fleet membership (§5.5).
    HostObs obs;
    obs.ip = view.ip[i];
    obs.port = view.port[i];
    obs.software = std::move(software);
    bool in_big_cluster = false;
    for (const std::uint32_t id : ids) {
      const DictCertEntry& entry = cache.at(id);
      obs.fps.insert(entry.fp_hex);
      if (entry.parsed) {
        obs.hashes[entry.fp_hex] = entry.hash;
        corpus.try_emplace(entry.fp_hex, entry.hash, entry.not_before_days);
      }
      if (sets.big_cluster_fps.contains(entry.fp_hex)) in_big_cluster = true;
    }
    reuse_devices += in_big_cluster;
    history.push_back(std::move(obs));

    if (!final_week) return;

    // ----- Fig. 3: security modes and policies --------------------------
    ++modes.servers;
    const std::uint8_t mode_mask = view.mode_mask[i];
    MessageSecurityMode weakest_mode = MessageSecurityMode::Invalid;
    MessageSecurityMode strongest_mode = MessageSecurityMode::Invalid;
    for (int m = 0; m <= 3; ++m) {
      if (!(mode_mask & (1u << m))) continue;
      const auto mode = static_cast<MessageSecurityMode>(m);
      modes.mode_support[mode]++;
      if (weakest_mode == MessageSecurityMode::Invalid ||
          security_mode_rank(mode) < security_mode_rank(weakest_mode)) {
        weakest_mode = mode;
      }
      if (security_mode_rank(mode) > security_mode_rank(strongest_mode)) strongest_mode = mode;
    }
    if (weakest_mode != MessageSecurityMode::Invalid) modes.mode_least[weakest_mode]++;
    if (strongest_mode != MessageSecurityMode::Invalid) modes.mode_most[strongest_mode]++;
    if (strongest_mode == MessageSecurityMode::None) ++modes.none_only;
    if (security_mode_rank(strongest_mode) >= security_mode_rank(MessageSecurityMode::Sign)) {
      ++modes.secure_mode_capable;
    }

    SecurityPolicy weakest = SecurityPolicy::None;
    SecurityPolicy strongest = SecurityPolicy::None;
    int weakest_rank = 1000, strongest_rank = -1;
    bool any_deprecated = false;
    bool any_policy = false;
    for (int code = 0; code <= 5; ++code) {
      if (!(policy_mask & (1u << code))) continue;
      any_policy = true;
      const auto policy = static_cast<SecurityPolicy>(code);
      modes.policy_support[policy]++;
      const auto& info = policy_info(policy);
      any_deprecated |= info.deprecated;
      if (info.rank < weakest_rank) {
        weakest_rank = info.rank;
        weakest = policy;
      }
      if (info.rank > strongest_rank) {
        strongest_rank = info.rank;
        strongest = policy;
      }
    }
    if (any_policy) {
      modes.policy_least[weakest]++;
      modes.policy_most[strongest]++;
      if (policy_info(weakest).secure) ++modes.strong_enforcing;
      if (policy_info(strongest).secure) ++modes.strong_capable;
      if (policy_info(strongest).deprecated) ++modes.deprecated_max;
    }
    modes.deprecated_supported += any_deprecated;

    // ----- Fig. 4: certificate conformance ------------------------------
    if (cert) {
      ++certs.hosts_with_cert;
      if (!cert->self_signed) ++certs.ca_signed;
      const CertClassKey key{cert->hash, cert->key_bits};
      for (int code = 0; code <= 5; ++code) {
        if (!(policy_mask & (1u << code))) continue;
        const auto policy = static_cast<SecurityPolicy>(code);
        certs.class_counts[policy][key]++;
        certs.announced_with_cert[policy]++;
        switch (classify_certificate(policy, cert->hash, cert->key_bits)) {
          case CertConformance::too_weak: certs.too_weak[policy]++; break;
          case CertConformance::too_strong: certs.too_strong[policy]++; break;
          case CertConformance::conformant: break;
        }
      }
      if (cert_too_weak) ++certs.weaker_than_max;
    }

    // ----- Fig. 6 / Table 2: authentication -----------------------------
    ++auth.servers;
    AuthRow probe;
    const std::uint8_t token_mask = view.token_mask[i];
    probe.anonymous = (token_mask & (1u << static_cast<int>(UserTokenType::Anonymous))) != 0;
    probe.credentials = (token_mask & (1u << static_cast<int>(UserTokenType::UserName))) != 0;
    probe.certificate = (token_mask & (1u << static_cast<int>(UserTokenType::Certificate))) != 0;
    probe.token = (token_mask & (1u << static_cast<int>(UserTokenType::IssuedToken))) != 0;
    AuthRow& row = auth_rows.try_emplace(probe.key(), probe).first->second;
    const bool sc_rejected =
        view.channel[i] == static_cast<std::uint8_t>(ChannelOutcome::cert_rejected) ||
        view.channel[i] == static_cast<std::uint8_t>(ChannelOutcome::failed);
    if (sc_rejected) {
      ++auth.channel_rejected;
      ++row.channel_rejected;
    } else {
      ++auth.channel_capable;
    }
    if (probe.anonymous) {
      ++auth.anonymous_offered;
      if (!sc_rejected) ++auth.anonymous_channel_capable;
      const bool none_mode =
          (mode_mask & (1u << static_cast<int>(MessageSecurityMode::None))) != 0;
      if (!none_mode) ++auth.anonymous_secure_only;
    }
    if (accessible) {
      ++auth.accessible;
      switch (classify_namespaces(nss)) {
        case SystemClass::production:
          ++auth.production;
          ++row.production;
          break;
        case SystemClass::test:
          ++auth.test;
          ++row.test;
          break;
        case SystemClass::unclassified:
          ++auth.unclassified;
          ++row.unclassified;
          break;
      }
    } else if (!sc_rejected) {
      ++auth.auth_rejected;
      ++row.auth_rejected;
    }

    // ----- Fig. 8: deficit breakdown ------------------------------------
    ++deficits.servers;
    auto tally = [&](const char* deficit) {
      deficits.by_manufacturer[deficit][cluster]++;
      deficits.by_as[deficit][view.asn[i]]++;
    };
    if (max == SecurityPolicy::None) {
      ++deficits.none_only;
      tally("None");
    }
    if (max != SecurityPolicy::None && policy_info(max).deprecated) {
      ++deficits.deprecated_only;
      tally("Deprecated Policies");
    }
    if (cert_too_weak) {
      ++deficits.weak_certificate;
      tally("Too Weak Certificate");
    }
    bool reused = false;
    for (const std::uint32_t id : ids) {
      if (sets.reused_fps.contains(cache.at(id).fp_hex)) reused = true;
    }
    if (reused) {
      ++deficits.cert_reuse;
      tally("Certificate Reuse");
    }
    if (anonymous_offered) {
      ++deficits.anonymous_access;
      tally("Anonymous Access");
    }
    if (host_deficient) ++deficits.deficient_total;
  }
};

void merge_figures(ChunkPartial& into, ChunkPartial&& from) {
  // Cross-protocol split (final week, servers only)
  merge_count_map(into.proto_servers, from.proto_servers);
  merge_count_map(into.proto_deficient, from.proto_deficient);
  merge_count_map(into.proto_anonymous, from.proto_anonymous);
  // Fig. 3
  into.modes.servers += from.modes.servers;
  merge_count_map(into.modes.mode_support, from.modes.mode_support);
  merge_count_map(into.modes.mode_least, from.modes.mode_least);
  merge_count_map(into.modes.mode_most, from.modes.mode_most);
  merge_count_map(into.modes.policy_support, from.modes.policy_support);
  merge_count_map(into.modes.policy_least, from.modes.policy_least);
  merge_count_map(into.modes.policy_most, from.modes.policy_most);
  into.modes.none_only += from.modes.none_only;
  into.modes.secure_mode_capable += from.modes.secure_mode_capable;
  into.modes.deprecated_supported += from.modes.deprecated_supported;
  into.modes.deprecated_max += from.modes.deprecated_max;
  into.modes.strong_enforcing += from.modes.strong_enforcing;
  into.modes.strong_capable += from.modes.strong_capable;
  // Fig. 4
  for (const auto& [policy, classes] : from.certs.class_counts) {
    merge_count_map(into.certs.class_counts[policy], classes);
  }
  merge_count_map(into.certs.announced_with_cert, from.certs.announced_with_cert);
  merge_count_map(into.certs.too_weak, from.certs.too_weak);
  merge_count_map(into.certs.too_strong, from.certs.too_strong);
  into.certs.weaker_than_max += from.certs.weaker_than_max;
  into.certs.hosts_with_cert += from.certs.hosts_with_cert;
  into.certs.ca_signed += from.certs.ca_signed;
  // Fig. 6 / Table 2
  for (auto& [key, row] : from.auth_rows) {
    const auto [it, inserted] = into.auth_rows.try_emplace(key, row);
    if (!inserted) {
      it->second.production += row.production;
      it->second.test += row.test;
      it->second.unclassified += row.unclassified;
      it->second.auth_rejected += row.auth_rejected;
      it->second.channel_rejected += row.channel_rejected;
    }
  }
  into.auth.servers += from.auth.servers;
  into.auth.channel_capable += from.auth.channel_capable;
  into.auth.channel_rejected += from.auth.channel_rejected;
  into.auth.anonymous_offered += from.auth.anonymous_offered;
  into.auth.anonymous_channel_capable += from.auth.anonymous_channel_capable;
  into.auth.anonymous_secure_only += from.auth.anonymous_secure_only;
  into.auth.accessible += from.auth.accessible;
  into.auth.auth_rejected += from.auth.auth_rejected;
  into.auth.production += from.auth.production;
  into.auth.test += from.auth.test;
  into.auth.unclassified += from.auth.unclassified;
  // Fig. 7 (record order == chunk order)
  auto append = [](std::vector<double>& into_vec, std::vector<double>& from_vec) {
    into_vec.insert(into_vec.end(), from_vec.begin(), from_vec.end());
  };
  append(into.access.read_fractions, from.access.read_fractions);
  append(into.access.write_fractions, from.access.write_fractions);
  append(into.access.exec_fractions, from.access.exec_fractions);
  // Fig. 8
  for (const auto& [deficit, labels] : from.deficits.by_manufacturer) {
    merge_count_map(into.deficits.by_manufacturer[deficit], labels);
  }
  for (const auto& [deficit, ases] : from.deficits.by_as) {
    merge_count_map(into.deficits.by_as[deficit], ases);
  }
  into.deficits.none_only += from.deficits.none_only;
  into.deficits.deprecated_only += from.deficits.deprecated_only;
  into.deficits.weak_certificate += from.deficits.weak_certificate;
  into.deficits.cert_reuse += from.deficits.cert_reuse;
  into.deficits.anonymous_access += from.deficits.anonymous_access;
  into.deficits.deficient_total += from.deficits.deficient_total;
  into.deficits.servers += from.deficits.servers;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

void ReaderRecordSource::visit_chunk(std::size_t chunk,
                                     const std::function<void(const HostScanRecord&)>& fn) const {
  // Each pool worker reuses one decode buffer across all the chunks it
  // processes instead of allocating (and churning) a fresh vector per call.
  static thread_local std::vector<HostScanRecord> records;
  reader_.read_chunk(chunk, records);
  for (const auto& record : records) fn(record);
}

SnapshotVectorSource::SnapshotVectorSource(const std::vector<ScanSnapshot>& snapshots,
                                           std::uint32_t chunk_records)
    : snapshots_(snapshots) {
  const std::size_t stride = std::max<std::uint32_t>(1, chunk_records);
  for (std::size_t week = 0; week < snapshots.size(); ++week) {
    const std::size_t hosts = snapshots[week].hosts.size();
    for (std::size_t first = 0; first < hosts; first += stride) {
      chunks_.push_back({week, first, std::min(stride, hosts - first)});
    }
  }
}

SnapshotMeta SnapshotVectorSource::week_meta(std::size_t week) const {
  const ScanSnapshot& snapshot = snapshots_[week];
  SnapshotMeta meta;
  meta.measurement_index = snapshot.measurement_index;
  meta.date_days = snapshot.date_days;
  meta.probes_sent = snapshot.probes_sent;
  meta.tcp_open_count = snapshot.tcp_open_count;
  meta.host_count = snapshot.hosts.size();
  return meta;
}

void SnapshotVectorSource::visit_chunk(
    std::size_t chunk, const std::function<void(const HostScanRecord&)>& fn) const {
  const Span& span = chunks_[chunk];
  const auto& hosts = snapshots_[span.week].hosts;
  for (std::size_t i = 0; i < span.count; ++i) fn(hosts[span.first + i]);
}

bool StudyAnalysis::figures_equal(const StudyAnalysis& other) const {
  return weeks == other.weeks && modes == other.modes && certificates == other.certificates &&
         reuse == other.reuse && shared_primes == other.shared_primes && auth == other.auth &&
         access_rights == other.access_rights && deficits == other.deficits &&
         longitudinal == other.longitudinal && scan_quality == other.scan_quality &&
         protocols == other.protocols;
}

StudyAnalysis analyze_source(const RecordSource& source, const AnalysisOptions& options) {
  const obs::WallTimer pass_timer(obs::Metric::analysis_pass_wall_us);
  StudyAnalysis analysis;
  const std::size_t weeks = source.week_count();
  for (std::size_t w = 0; w < weeks; ++w) analysis.weeks.push_back(source.week_meta(w));
  if (weeks == 0) return analysis;

  const std::size_t final_week = weeks - 1;
  const std::size_t chunk_count = source.chunk_count();
  std::vector<std::size_t> final_chunks;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    if (source.chunk_week(c) == final_week) final_chunks.push_back(c);
  }

  ThreadPool pool(options.threads);

  // Columnar fast path: when the source is a little-endian v6 file, the
  // passes below scan mmapped columns and share one per-dictionary-entry
  // certificate cache instead of decoding full records chunk by chunk.
  const SnapshotReader* col = source.columnar_reader();
  std::optional<DictCertCache> dict_cache;
  if (col != nullptr) dict_cache.emplace(*col, options.shared_primes);

  // ---- pass 1: certificate census of the final measurement --------------
  // Early prefix merge: completed chunk partials are folded into the
  // census as workers advance (in chunk order, so the result is identical
  // to the old merge-at-the-end pass), and each merged partial is freed
  // immediately — the peak is the in-flight chunks, not every chunk.
  std::vector<CensusPartial> census_partials(final_chunks.size());
  CensusPartial census;
  pool.parallel_for_merged(
      final_chunks.size(),
      [&](std::size_t i) {
        if (col != nullptr) {
          visit_columnar(*col, final_chunks[i], [&](const ColumnView& view) {
            std::vector<std::uint32_t> ids;
            for (std::size_t r = 0; r < view.records; ++r) {
              census_partials[i].absorb_columnar(view, r, *dict_cache, ids,
                                                 options.shared_primes);
            }
          });
        } else {
          source.visit_chunk(final_chunks[i], [&](const HostScanRecord& host) {
            census_partials[i].absorb(host, options.shared_primes);
          });
        }
      },
      [&](std::size_t i) {
        census.merge(std::move(census_partials[i]));
        census_partials[i] = CensusPartial{};
      });
  census_partials.clear();

  FinalWeekSets sets;
  for (const auto& [fp, cluster] : census.clusters) {
    if (cluster.hosts >= 3) {
      sets.reused_fps.insert(fp);
      if (cluster.org == "Bachmann electronic") sets.big_cluster_fps.insert(fp);
    }
  }

  // ---- pass 2: figures + weekly tallies + host history ------------------
  // The ordered merge runs *inside* the parallel pass: as soon as the
  // contiguous prefix of chunks has been aggregated, those partials fold
  // into the running totals (in chunk-index order — bit-identical to the
  // old merge-after-everything loop) and die. On a 10M-host stream the
  // per-host history summaries of every chunk used to coexist until the
  // end; now at most the unmerged suffix does.
  ChunkPartial total;
  std::vector<WeeklyObservation> week_obs(weeks);
  std::vector<ScanQualityWeek> quality_weeks(weeks);
  std::vector<std::map<ProtocolId, std::uint64_t>> proto_week_hosts(weeks);
  struct HostHistory {
    std::vector<int> weeks;
    std::vector<std::set<std::string>> cert_sets;
    std::vector<std::map<std::string, HashAlgorithm>> hashes;
    std::vector<std::string> software;
  };
  std::map<std::pair<Ipv4, std::uint16_t>, HostHistory> history;
  std::vector<ChunkPartial> partials(chunk_count);
  pool.parallel_for_merged(
      chunk_count,
      [&](std::size_t c) {
        const bool is_final = source.chunk_week(c) == final_week;
        if (col != nullptr) {
          visit_columnar(*col, c, [&](const ColumnView& view) {
            std::vector<std::uint32_t> ids;
            for (std::size_t r = 0; r < view.records; ++r) {
              partials[c].absorb_columnar(view, r, *dict_cache, ids, is_final, sets);
            }
          });
        } else {
          source.visit_chunk(c, [&](const HostScanRecord& host) {
            partials[c].absorb(host, is_final, sets);
          });
        }
      },
      [&](std::size_t c) {
        ChunkPartial& partial = partials[c];
        const std::size_t week = source.chunk_week(c);
        WeeklyObservation& obs = week_obs[week];
        obs.servers += partial.servers;
        obs.discovery += partial.discovery;
        obs.via_reference += partial.via_reference;
        obs.non_default_port += partial.non_default_port;
        obs.deficient += partial.deficient;
        obs.reuse_devices += partial.reuse_devices;
        ScanQualityWeek& q = quality_weeks[week];
        q.hosts += partial.q_hosts;
        q.complete += partial.q_complete;
        q.truncated += partial.q_truncated;
        q.degraded += partial.q_degraded;
        q.unreachable += partial.q_unreachable;
        q.faulted += partial.q_faulted;
        q.recovered += partial.q_recovered;
        q.retries += partial.q_retries;
        q.fault_events += partial.q_fault_events;
        merge_count_map(proto_week_hosts[week], partial.proto_hosts);
        merge_count_map(obs.by_manufacturer, partial.by_manufacturer);
        for (auto& [fp, info] : partial.corpus) total.corpus.try_emplace(fp, info);
        const int measurement_index = analysis.weeks[week].measurement_index;
        for (auto& host_obs : partial.history) {
          HostHistory& h = history[{host_obs.ip, host_obs.port}];
          h.weeks.push_back(measurement_index);
          h.cert_sets.push_back(std::move(host_obs.fps));
          h.hashes.push_back(std::move(host_obs.hashes));
          h.software.push_back(std::move(host_obs.software));
        }
        merge_figures(total, std::move(partial));
        partial = ChunkPartial{};
      });
  partials.clear();

  // ---- finalize: Fig. 5 reuse clusters ----------------------------------
  analysis.reuse.distinct_certificates = static_cast<int>(census.clusters.size());
  for (auto& [fp, cluster] : census.clusters) {
    if (cluster.hosts >= 3) {
      ++analysis.reuse.clusters_ge3;
      analysis.reuse.hosts_in_ge3 += cluster.hosts;
    }
    if (cluster.hosts >= 2) {
      analysis.reuse.clusters.push_back(
          {fp, cluster.hosts, std::move(cluster.ases), std::move(cluster.org)});
    }
  }
  std::sort(analysis.reuse.clusters.begin(), analysis.reuse.clusters.end(),
            [](const ReuseCluster& a, const ReuseCluster& b) { return a.host_count > b.host_count; });

  // ---- finalize: §5.3 shared primes -------------------------------------
  if (options.shared_primes) {
    std::vector<Bignum> moduli;
    moduli.reserve(census.moduli.size());
    for (auto& [hex, n] : census.moduli) moduli.push_back(std::move(n));
    analysis.shared_primes.distinct_moduli = moduli.size();
    const auto started = std::chrono::steady_clock::now();
    analysis.shared_primes.moduli_with_shared_prime =
        batch_gcd(moduli, options.shared_prime_threads).affected();
    analysis.shared_prime_seconds = seconds_since(started);
  }

  // ---- finalize: final-measurement figures ------------------------------
  analysis.modes = std::move(total.modes);
  analysis.certificates = std::move(total.certs);
  analysis.auth = std::move(total.auth);
  for (auto& [key, row] : total.auth_rows) analysis.auth.rows.push_back(row);
  analysis.access_rights = std::move(total.access);
  analysis.deficits = std::move(total.deficits);

  // ---- finalize: scan quality -------------------------------------------
  ScanQualityStats& quality = analysis.scan_quality;
  for (std::size_t w = 0; w < weeks; ++w) {
    ScanQualityWeek& q = quality_weeks[w];
    q.measurement_index = analysis.weeks[w].measurement_index;
    quality.hosts += q.hosts;
    quality.complete += q.complete;
    quality.truncated += q.truncated;
    quality.degraded += q.degraded;
    quality.unreachable += q.unreachable;
    quality.faulted += q.faulted;
    quality.recovered += q.recovered;
    quality.retries += q.retries;
    quality.fault_events += q.fault_events;
    quality.weeks.push_back(std::move(q));
  }
  if (quality.faulted > 0) {
    quality.recovery_rate =
        static_cast<double>(quality.recovered) / static_cast<double>(quality.faulted);
  }

  // ---- finalize: cross-protocol population split ------------------------
  for (std::size_t w = 0; w < weeks; ++w) {
    ProtocolWeek pw;
    pw.measurement_index = analysis.weeks[w].measurement_index;
    pw.hosts = std::move(proto_week_hosts[w]);
    analysis.protocols.weeks.push_back(std::move(pw));
  }
  analysis.protocols.servers = std::move(total.proto_servers);
  analysis.protocols.deficient = std::move(total.proto_deficient);
  analysis.protocols.anonymous = std::move(total.proto_anonymous);

  // ---- finalize: Fig. 2 / §5.5 longitudinal -----------------------------
  LongitudinalStats& lng = analysis.longitudinal;
  double sum = 0, sum_sq = 0;
  lng.deficiency_min = 100;
  for (std::size_t w = 0; w < weeks; ++w) {
    WeeklyObservation& obs = week_obs[w];
    obs.measurement_index = analysis.weeks[w].measurement_index;
    obs.date_days = analysis.weeks[w].date_days;
    obs.deficient_pct =
        obs.servers == 0 ? 0 : 100.0 * obs.deficient / static_cast<double>(obs.servers);
    sum += obs.deficient_pct;
    sum_sq += obs.deficient_pct * obs.deficient_pct;
    lng.deficiency_min = std::min(lng.deficiency_min, obs.deficient_pct);
    lng.deficiency_max = std::max(lng.deficiency_max, obs.deficient_pct);
    lng.weeks.push_back(std::move(obs));
  }
  {
    const double n = static_cast<double>(weeks);
    lng.deficiency_avg = sum / n;
    lng.deficiency_std =
        std::sqrt(std::max(0.0, sum_sq / n - lng.deficiency_avg * lng.deficiency_avg));
  }
  lng.total_distinct_certificates = total.corpus.size();
  const std::int64_t y2017 = days_from_civil({2017, 1, 1});
  const std::int64_t y2019 = days_from_civil({2019, 1, 1});
  for (const auto& [fp, info] : total.corpus) {
    if (info.first != HashAlgorithm::sha1) continue;
    if (info.second >= y2017) ++lng.sha1_after_2017;
    if (info.second >= y2019) ++lng.sha1_after_2019;
  }
  for (const auto& [endpoint, h] : history) {
    for (std::size_t i = 1; i < h.weeks.size(); ++i) {
      if (h.cert_sets[i] == h.cert_sets[i - 1] || h.cert_sets[i].empty() ||
          h.cert_sets[i - 1].empty()) {
        continue;
      }
      RenewalEvent event;
      event.ip = endpoint.first;
      event.week = h.weeks[i];
      event.software_update = !h.software[i].empty() && !h.software[i - 1].empty() &&
                              h.software[i] != h.software[i - 1];
      bool removed_sha1 = false, added_sha1 = false, removed_sha256 = false, added_sha256 = false;
      for (const auto& fp : h.cert_sets[i - 1]) {
        if (h.cert_sets[i].contains(fp)) continue;
        const auto it = h.hashes[i - 1].find(fp);
        if (it == h.hashes[i - 1].end()) continue;
        removed_sha1 |= it->second == HashAlgorithm::sha1;
        removed_sha256 |= it->second == HashAlgorithm::sha256;
      }
      for (const auto& fp : h.cert_sets[i]) {
        if (h.cert_sets[i - 1].contains(fp)) continue;
        const auto it = h.hashes[i].find(fp);
        if (it == h.hashes[i].end()) continue;
        added_sha1 |= it->second == HashAlgorithm::sha1;
        added_sha256 |= it->second == HashAlgorithm::sha256;
      }
      event.sha1_replaced = removed_sha1 && added_sha256 && !added_sha1;
      event.downgraded_to_sha1 = removed_sha256 && added_sha1 && !added_sha256;
      lng.renewals_with_software_update += event.software_update;
      lng.sha1_upgrades += event.sha1_replaced;
      lng.downgrades += event.downgraded_to_sha1;
      lng.renewals.push_back(event);
    }
  }
  return analysis;
}

StudyAnalysis analyze_reader(const SnapshotReader& reader, const AnalysisOptions& options) {
  return analyze_source(ReaderRecordSource(reader), options);
}

StudyAnalysis analyze_file(const std::string& path, std::uint64_t seed,
                           const AnalysisOptions& options) {
  const SnapshotReader reader(path, seed);
  return analyze_reader(reader, options);
}

StudyAnalysis analyze_snapshots(const std::vector<ScanSnapshot>& snapshots,
                                const AnalysisOptions& options) {
  return analyze_source(SnapshotVectorSource(snapshots, options.chunk_records), options);
}

}  // namespace opcua_study
