// The campaign-series API — campaigns as a first-class *ordered
// collection*, not a one-file or two-file argument list.
//
// The paper's longitudinal story (§5.5) and the PAM 2022 follow-up are
// about trajectories: the same host observed across many campaigns. A
// CampaignSet is that trajectory's input — an ordered, lazily-opened list
// of recorded campaigns, each member either a snapshot file (opened on
// demand, streamed chunk by chunk) or an in-memory snapshot vector, all
// exposed uniformly through the RecordSource interface the analysis,
// diff, and series passes already consume. Member identity (campaign
// label/epoch) comes from the v5 campaign block for files and from an
// explicit annotation for in-memory members; ordering is validated with
// the chain rules generalized from the pairwise diff (epochs strictly
// increasing over declared members, no duplicate consecutive identity).
//
// analyze_series() walks the set pairwise: postures of two adjacent
// members are collected (chunk-parallel, chunk-order-merged — the result
// is identical for any thread count), matched with the two-pass
// address-then-unique-certificate matcher, tallied into a per-step
// CampaignDiff, and the accepted links are transitively chained into
// per-host *timelines*. Memory stays bounded by two posture vectors plus
// one timeline state per live host — never by the records — so an
// N-member, million-host series streams in the same footprint as one
// pairwise diff. From the timelines the analysis reports what no
// pairwise diff can see: time-to-remediation distributions
// (campaigns-until-upgrade for hosts starting below a secure policy),
// relapse counts, fleet growth/churn curves, and N−1 consecutive
// transition-matrix steps.
#pragma once

#include <memory>

#include "diff/diff.hpp"
#include "series/matcher.hpp"

namespace opcua_study {

/// One member of a series: a recorded snapshot file *or* an in-memory
/// campaign, plus the identity annotation for the latter.
struct CampaignMember {
  std::string path;        // file-backed member when non-empty
  std::uint64_t seed = 0;  // snapshot-file seed (file members)
  std::shared_ptr<const std::vector<ScanSnapshot>> snapshots;  // in-memory member
  /// Identity annotation for in-memory members (files self-describe via
  /// the v5 campaign block; the annotation fills in only when the
  /// underlying measurement declares none).
  std::string label;
  std::int64_t epoch_days = 0;

  bool file_backed() const { return !path.empty(); }
};

/// Ordered, lazily-opened collection of recorded campaigns. Members are
/// only opened (file header/footer validated, records decoded) when a
/// pass asks for them; a 20-member series costs nothing to describe.
class CampaignSet {
 public:
  /// A member opened for reading: a uniform RecordSource view over the
  /// campaign (SnapshotReader-backed for files, vector-backed for
  /// in-memory members) plus the final measurement's identity.
  class OpenMember {
   public:
    const RecordSource& source() const { return *source_; }
    /// Final-measurement metadata with the member annotation applied.
    const SnapshotMeta& final_meta() const { return final_meta_; }
    /// Backing SnapshotReader for file members (nullptr for in-memory
    /// members) — what sketch validation fingerprints against.
    const SnapshotReader* reader() const { return reader_.get(); }

   private:
    friend class CampaignSet;
    OpenMember() = default;
    std::unique_ptr<SnapshotReader> reader_;  // file members only
    std::shared_ptr<const std::vector<ScanSnapshot>> pin_;  // in-memory members
    std::unique_ptr<RecordSource> source_;
    SnapshotMeta final_meta_;
  };

  /// Append a recorded snapshot file (opened lazily; a bad path/seed
  /// surfaces as SnapshotError at open time, not here).
  void add_file(std::string path, std::uint64_t seed);

  /// Append an in-memory campaign, optionally annotated with a campaign
  /// identity (used when the measurement itself declares none).
  void add_snapshots(std::vector<ScanSnapshot> snapshots, std::string label = "",
                     std::int64_t epoch_days = 0);
  void add_snapshots(std::shared_ptr<const std::vector<ScanSnapshot>> snapshots,
                     std::string label = "", std::int64_t epoch_days = 0);

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  const CampaignMember& member(std::size_t index) const { return members_[index]; }

  /// Open member `index`. Throws SnapshotError when the file is missing,
  /// truncated, seed-mismatched, or the campaign holds no measurement.
  OpenMember open(std::size_t index,
                  std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords) const;

  /// Final-measurement metadata of every member (each opened briefly —
  /// footer only, no record decode). The cheap prepass validation and
  /// reporting build on.
  std::vector<SnapshotMeta> final_metas(
      std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords) const;

  /// Chain validation over the members' final measurements
  /// (validate_campaign_chain): epochs strictly increasing across
  /// declared members, no duplicate consecutive identity.
  void validate(std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords) const;

 private:
  std::vector<CampaignMember> members_;
};

struct SeriesOptions {
  /// Worker threads for the posture passes; 0 = hardware concurrency,
  /// 1 = inline. The resulting SeriesAnalysis is identical for any value.
  int threads = 1;
  /// Enforce the campaign-chain ordering rules before analyzing.
  bool validate_ordering = true;
  /// Chunk size when streaming in-memory members.
  std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords;
  /// Load posture sketch sidecars (src/series/sketch.hpp) for file-backed
  /// members instead of re-walking their records. A missing sidecar falls
  /// back to the posture pass; a *stale* one (snapshot fingerprint
  /// mismatch) throws SnapshotError — stale postures are never served.
  /// The resulting analysis is byte-identical either way.
  bool use_sketches = true;
};

/// One point of the fleet growth/churn curve.
struct SeriesMemberStats {
  SnapshotMeta meta;  // final measurement, annotation applied
  std::uint64_t hosts = 0;
  std::uint64_t deficient = 0;  // paper §5.2 definition
  /// Per-protocol split of hosts/deficient (the ProtocolProbe registry
  /// dimension); single-protocol members carry one "opcua" key.
  std::map<ProtocolId, std::uint64_t> hosts_by_protocol;
  std::map<ProtocolId, std::uint64_t> deficient_by_protocol;
  /// Population flow: hosts linked from the previous member vs. fresh
  /// arrivals (member 0 counts its whole population as arrivals), and
  /// hosts with no link into the next member (0 for the last member).
  std::uint64_t matched_from_previous = 0;
  std::uint64_t arrived = 0;
  std::uint64_t retired_into_next = 0;

  friend bool operator==(const SeriesMemberStats&, const SeriesMemberStats&) = default;
};

/// Host-identity timelines: one per distinct host chained across
/// consecutive members by the matcher.
struct TimelineStats {
  std::uint64_t total = 0;      // distinct host identities observed
  std::uint64_t full_span = 0;  // observed in every member
  /// Timelines still alive at the last member — their true span is
  /// right-censored by the end of observation, not by host churn.
  std::uint64_t censored = 0;
  /// length_histogram[len] = timelines observed in exactly `len`
  /// consecutive members (index 0 unused).
  std::vector<std::uint64_t> length_histogram;

  friend bool operator==(const TimelineStats&, const TimelineStats&) = default;
};

/// Campaigns-until-upgrade for hosts that start below a secure policy
/// (strongest advertised policy None or deprecated at first observation).
struct RemediationStats {
  std::uint64_t insecure_at_start = 0;
  /// steps_to_secure[k] = timelines whose first secure observation came
  /// exactly `k` campaigns after their first observation (index 0 unused;
  /// sized members, so k <= members-1).
  std::vector<std::uint64_t> steps_to_secure;
  std::uint64_t remediated = 0;        // sum of steps_to_secure
  std::uint64_t never_remediated = 0;  // timeline ended still insecure
  std::uint64_t relapsed = 0;          // reached secure, later dropped below
  /// Of never_remediated: timelines still observed at the last member —
  /// censored, not known-failed (the host may yet remediate).
  std::uint64_t censored = 0;

  friend bool operator==(const RemediationStats&, const RemediationStats&) = default;
};

/// Everything analyze_series computes. steps[k] is the full pairwise
/// CampaignDiff between members k and k+1 — on a two-member set it equals
/// diff_campaigns field for field.
struct SeriesAnalysis {
  std::vector<SeriesMemberStats> members;  // N
  std::vector<CampaignDiff> steps;         // N-1
  TimelineStats timelines;
  RemediationStats remediation;

  // Evidence totals over every accepted link of every step.
  std::uint64_t links_by_address = 0;
  std::uint64_t links_by_cert_corroborated = 0;
  std::uint64_t links_by_cert_bare = 0;
  /// Confidence-weighted mean over all links (see match_confidence).
  double mean_link_confidence() const;

  friend bool operator==(const SeriesAnalysis&, const SeriesAnalysis&) = default;
};

/// Incremental series accumulator — the engine under analyze_series and
/// the study service's resident series.
///
/// Members are fed one at a time as (final-measurement meta, posture
/// vector) pairs; each add matches against the *previous* member's
/// retained postures, tallies the step diff, and advances the per-host
/// timelines. Appending member N+1 therefore costs one posture pass
/// (done by the caller — usually a sketch load) plus one match,
/// independent of how many members came before: earlier members are
/// never re-walked. analysis() closes a *copy* of the live timelines, so
/// it can be called after every add and the builder keeps growing.
///
/// Determinism: feeding the same (meta, postures) sequence produces a
/// SeriesAnalysis identical to analyze_series over the equivalent
/// CampaignSet — the batch path is literally this builder fed from
/// collect_postures.
class SeriesBuilder {
 public:
  /// `validate_ordering`: enforce validate_campaign_chain over the metas
  /// seen so far on every add (the offending add throws, leaving the
  /// builder unchanged).
  explicit SeriesBuilder(bool validate_ordering = true);

  /// Append the next campaign. `postures` must be the record-ordered
  /// collect_postures output of the member's final measurement.
  void add_member(SnapshotMeta final_meta, std::vector<HostPosture> postures);

  std::size_t size() const { return finals_.size(); }
  const std::vector<SnapshotMeta>& finals() const { return finals_; }

  /// The analysis over every member added so far (throws SnapshotError
  /// below two members). Closes live timelines into a copy; the builder
  /// itself is untouched and can keep accepting members.
  SeriesAnalysis analysis() const;

  /// Heap bytes retained by the builder (postures + timelines + partial
  /// analysis) — the study service's resident-size accounting.
  std::size_t resident_bytes() const;

 private:
  /// Live per-timeline state; closed into the histograms when the host
  /// fails to match into the next member (or, censored, at analysis()).
  struct Timeline {
    std::uint32_t first_member = 0;
    std::uint32_t length = 0;
    bool started_insecure = false;   // policy bucket below secure at first obs
    std::int32_t secure_after = -1;  // steps from first obs to first secure obs
    bool relapsed = false;
  };
  void close_timeline(SeriesAnalysis& out, const Timeline& state, bool censored) const;

  bool validate_ordering_;
  std::vector<SnapshotMeta> finals_;
  std::vector<HostPosture> current_;   // previous member's postures
  std::vector<Timeline> active_;       // one per host of the previous member
  SeriesAnalysis acc_;                 // closed-timeline totals + members/steps
};

/// Analyze an N-campaign series. Throws SnapshotError when the set has
/// fewer than two members, a member holds no measurement, a file member
/// fails to open, or (validate_ordering) the campaign chain is invalid.
/// Deterministic: byte-identical results for any thread count and for
/// file-backed vs. in-memory members carrying the same records and
/// identities.
SeriesAnalysis analyze_series(const CampaignSet& set, const SeriesOptions& options = {});

/// The machine-readable series report (SERIES_report.json shape):
/// members, per-step diffs, timelines, remediation, evidence grading.
std::string series_analysis_json(const SeriesAnalysis& analysis);

/// Append the series-report fields to an already-open JSON object — the
/// shared emitter under series_analysis_json and the study service's
/// series query.
void append_series_analysis_fields(JsonWriter& json, const SeriesAnalysis& analysis);

}  // namespace opcua_study
