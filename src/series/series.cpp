// CampaignSet plumbing and the N-way series analysis.
//
// analyze_series holds at most two posture vectors (the adjacent pair
// being matched) plus one TimelineState per live host. Timelines advance
// sequentially over record-ordered posture vectors, so every derived
// statistic inherits the matcher's determinism: identical for any thread
// count, and for streamed vs. in-memory members carrying the same
// records.
#include "series/series.hpp"

#include "obs/metrics.hpp"
#include "report/json.hpp"
#include "series/matcher.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

// ------------------------------------------------------------ CampaignSet

void CampaignSet::add_file(std::string path, std::uint64_t seed) {
  CampaignMember member;
  member.path = std::move(path);
  member.seed = seed;
  members_.push_back(std::move(member));
}

void CampaignSet::add_snapshots(std::vector<ScanSnapshot> snapshots, std::string label,
                                std::int64_t epoch_days) {
  add_snapshots(std::make_shared<const std::vector<ScanSnapshot>>(std::move(snapshots)),
                std::move(label), epoch_days);
}

void CampaignSet::add_snapshots(std::shared_ptr<const std::vector<ScanSnapshot>> snapshots,
                                std::string label, std::int64_t epoch_days) {
  CampaignMember member;
  member.snapshots = std::move(snapshots);
  member.label = std::move(label);
  member.epoch_days = epoch_days;
  members_.push_back(std::move(member));
}

CampaignSet::OpenMember CampaignSet::open(std::size_t index,
                                          std::uint32_t chunk_records) const {
  const CampaignMember& member = members_.at(index);
  OpenMember open;
  if (member.file_backed()) {
    open.reader_ = std::make_unique<SnapshotReader>(member.path, member.seed);
    open.source_ = std::make_unique<ReaderRecordSource>(*open.reader_);
  } else {
    open.pin_ = member.snapshots;
    open.source_ = std::make_unique<SnapshotVectorSource>(*member.snapshots, chunk_records);
  }
  if (open.source_->week_count() == 0) {
    throw SnapshotError("campaign series: member " + std::to_string(index) +
                        " holds no measurement");
  }
  open.final_meta_ = open.source_->week_meta(open.source_->week_count() - 1);
  if (!campaign_declared(open.final_meta_)) {
    open.final_meta_.campaign_label = member.label;
    open.final_meta_.campaign_epoch_days = member.epoch_days;
  }
  return open;
}

std::vector<SnapshotMeta> CampaignSet::final_metas(std::uint32_t chunk_records) const {
  std::vector<SnapshotMeta> metas;
  metas.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    metas.push_back(open(i, chunk_records).final_meta());
  }
  return metas;
}

void CampaignSet::validate(std::uint32_t chunk_records) const {
  validate_campaign_chain(final_metas(chunk_records));
}

// --------------------------------------------------------- analyze_series

namespace {

/// Per-timeline state while the pass advances; closed into the histogram
/// totals when the host fails to match into the next member (or at the
/// end of the series).
struct TimelineState {
  std::uint32_t first_member = 0;
  std::uint32_t length = 0;
  bool started_insecure = false;  // policy bucket below secure at first obs
  std::int32_t secure_after = -1;  // steps from first obs to first secure obs
  bool relapsed = false;
};

struct TimelineCloser {
  SeriesAnalysis& out;
  std::size_t member_count;

  void close(const TimelineState& state) {
    out.timelines.length_histogram[state.length] += 1;
    if (state.first_member == 0 && state.length == member_count) ++out.timelines.full_span;
    if (state.started_insecure) {
      ++out.remediation.insecure_at_start;
      if (state.secure_after > 0) {
        out.remediation.steps_to_secure[static_cast<std::size_t>(state.secure_after)] += 1;
        ++out.remediation.remediated;
      } else {
        ++out.remediation.never_remediated;
      }
      if (state.relapsed) ++out.remediation.relapsed;
    }
  }
};

std::uint64_t count_deficient(const std::vector<HostPosture>& postures) {
  std::uint64_t deficient = 0;
  for (const HostPosture& p : postures) deficient += p.deficient;
  return deficient;
}

void split_by_protocol(const std::vector<HostPosture>& postures, SeriesMemberStats& stats) {
  for (const HostPosture& p : postures) {
    stats.hosts_by_protocol[p.protocol]++;
    stats.deficient_by_protocol[p.protocol] += p.deficient;
  }
}

}  // namespace

double SeriesAnalysis::mean_link_confidence() const {
  return mean_match_confidence(links_by_address, links_by_cert_corroborated, links_by_cert_bare);
}

SeriesAnalysis analyze_series(const CampaignSet& set, const SeriesOptions& options) {
  const obs::WallTimer pass_timer(obs::Metric::series_pass_wall_us);
  if (set.size() < 2) {
    throw SnapshotError("campaign series needs >= 2 members (got " +
                        std::to_string(set.size()) + ")");
  }
  const std::size_t n = set.size();
  SeriesAnalysis out;
  out.timelines.length_histogram.assign(n + 1, 0);
  out.remediation.steps_to_secure.assign(n, 0);
  ThreadPool pool(options.threads);
  TimelineCloser closer{out, n};

  // Each member is opened exactly once, when the walk reaches it; its
  // identity is validated against the chain seen so far before any of
  // its postures are collected, so an out-of-order member fails before
  // its posture work (and a truncated file fails at its open).
  std::vector<SnapshotMeta> finals;
  finals.reserve(n);

  // Member 0: postures + one fresh timeline per host.
  std::vector<HostPosture> current;
  {
    const CampaignSet::OpenMember member = set.open(0, options.chunk_records);
    finals.push_back(member.final_meta());
    current = collect_postures(member.source(), pool);
  }
  std::vector<TimelineState> active(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    active[i] = {0, 1, current[i].policy_bucket < 2, current[i].policy_bucket == 2 ? 0 : -1,
                 false};
  }
  out.timelines.total = current.size();
  {
    SeriesMemberStats stats;
    stats.meta = finals[0];
    stats.hosts = current.size();
    stats.deficient = count_deficient(current);
    split_by_protocol(current, stats);
    stats.arrived = current.size();
    out.members.push_back(std::move(stats));
  }

  // Adjacent pairs: match, tally the step diff, advance the timelines.
  for (std::size_t m = 1; m < n; ++m) {
    std::vector<HostPosture> next;
    {
      const CampaignSet::OpenMember member = set.open(m, options.chunk_records);
      finals.push_back(member.final_meta());
      if (options.validate_ordering) validate_campaign_chain(finals);
      next = collect_postures(member.source(), pool);
    }
    const MatchResult match = match_postures(current, next);
    CampaignDiff step = tally_step(current, next, match);
    step.base_week = finals[m - 1];
    step.followup_week = finals[m];
    out.links_by_address += step.matched_by_address;
    out.links_by_cert_corroborated += step.cert_matches_corroborated;
    out.links_by_cert_bare += step.cert_matches_bare;

    SeriesMemberStats stats;
    stats.meta = finals[m];
    stats.hosts = next.size();
    stats.deficient = count_deficient(next);
    split_by_protocol(next, stats);
    stats.matched_from_previous = step.matched();
    stats.arrived = step.arrived;
    out.members[m - 1].retired_into_next = step.retired;
    out.members.push_back(std::move(stats));
    out.steps.push_back(std::move(step));

    std::vector<TimelineState> next_active(next.size());
    for (std::uint32_t bi = 0; bi < next.size(); ++bi) {
      const std::uint32_t ai = match.base_of[bi];
      if (ai == MatchResult::kUnmatched) {
        // Fresh arrival: a new timeline starts here.
        next_active[bi] = {static_cast<std::uint32_t>(m), 1, next[bi].policy_bucket < 2,
                           next[bi].policy_bucket == 2 ? 0 : -1, false};
        ++out.timelines.total;
        continue;
      }
      TimelineState state = active[ai];
      ++state.length;
      if (next[bi].policy_bucket == 2) {
        if (state.secure_after < 0) state.secure_after = static_cast<std::int32_t>(state.length - 1);
      } else if (state.secure_after >= 0) {
        state.relapsed = true;  // had reached secure, dropped below again
      }
      next_active[bi] = state;
    }
    // Timelines without a successor close now (their host retired).
    for (std::uint32_t ai = 0; ai < current.size(); ++ai) {
      if (!match.base_matched[ai]) closer.close(active[ai]);
    }
    current = std::move(next);
    active = std::move(next_active);
  }
  // The series ends: every still-live timeline closes.
  for (const TimelineState& state : active) closer.close(state);
  return out;
}

// ----------------------------------------------------------------- report

std::string series_analysis_json(const SeriesAnalysis& analysis) {
  JsonWriter json;
  json.begin_object();
  json.key("members").begin_array();
  for (const SeriesMemberStats& member : analysis.members) {
    json.begin_object()
        .field("label", member.meta.campaign_label)
        .field("epoch_days", static_cast<std::uint64_t>(member.meta.campaign_epoch_days))
        .field("date_days", static_cast<std::uint64_t>(member.meta.date_days))
        .field("hosts", member.hosts)
        .field("deficient", member.deficient)
        .field("matched_from_previous", member.matched_from_previous)
        .field("arrived", member.arrived)
        .field("retired_into_next", member.retired_into_next);
    json.key("protocols").begin_object();
    for (const auto& [protocol, hosts] : member.hosts_by_protocol) {
      const auto it = member.deficient_by_protocol.find(protocol);
      json.key(protocol_name(protocol))
          .begin_object()
          .field("hosts", hosts)
          .field("deficient", it == member.deficient_by_protocol.end() ? 0 : it->second)
          .end_object();
    }
    json.end_object().end_object();
  }
  json.end_array();
  json.key("steps").begin_array();
  for (const CampaignDiff& step : analysis.steps) {
    json.begin_object();
    append_campaign_diff_fields(json, step);
    json.end_object();
  }
  json.end_array();
  json.key("timelines")
      .begin_object()
      .field("total", analysis.timelines.total)
      .field("full_span", analysis.timelines.full_span)
      .key("length_histogram")
      .begin_array();
  for (std::size_t len = 1; len < analysis.timelines.length_histogram.size(); ++len) {
    json.begin_object()
        .field("members", static_cast<std::uint64_t>(len))
        .field("timelines", analysis.timelines.length_histogram[len])
        .end_object();
  }
  json.end_array().end_object();
  json.key("remediation")
      .begin_object()
      .field("insecure_at_start", analysis.remediation.insecure_at_start)
      .field("remediated", analysis.remediation.remediated)
      .field("never_remediated", analysis.remediation.never_remediated)
      .field("relapsed", analysis.remediation.relapsed)
      .key("steps_to_secure")
      .begin_array();
  for (std::size_t k = 1; k < analysis.remediation.steps_to_secure.size(); ++k) {
    json.begin_object()
        .field("campaigns", static_cast<std::uint64_t>(k))
        .field("timelines", analysis.remediation.steps_to_secure[k])
        .end_object();
  }
  json.end_array().end_object();
  json.key("match_evidence")
      .begin_object()
      .field("address", analysis.links_by_address)
      .field("certificate_corroborated", analysis.links_by_cert_corroborated)
      .field("certificate_bare", analysis.links_by_cert_bare)
      .key("link_confidence")
      .begin_object()
      .field("address", match_confidence(MatchEvidence::address))
      .field("certificate_corroborated", match_confidence(MatchEvidence::cert_corroborated))
      .field("certificate_bare", match_confidence(MatchEvidence::cert_bare))
      .end_object()
      .field("mean_confidence", analysis.mean_link_confidence())
      .end_object();
  json.end_object();
  return json.str();
}

}  // namespace opcua_study
