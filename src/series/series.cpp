// CampaignSet plumbing and the N-way series analysis.
//
// The analysis engine is SeriesBuilder: it holds at most two posture
// vectors (the adjacent pair being matched) plus one Timeline per live
// host. Timelines advance sequentially over record-ordered posture
// vectors, so every derived statistic inherits the matcher's
// determinism: identical for any thread count, for streamed vs.
// in-memory members, and for sketch-fed vs. record-walked postures.
// analyze_series is the batch driver — open each member, produce its
// postures (sketch sidecar when present and valid, posture pass
// otherwise), feed the builder; the study service keeps a builder
// resident and appends to it instead.
#include "series/series.hpp"

#include "obs/metrics.hpp"
#include "report/json.hpp"
#include "series/matcher.hpp"
#include "series/sketch.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

// ------------------------------------------------------------ CampaignSet

void CampaignSet::add_file(std::string path, std::uint64_t seed) {
  CampaignMember member;
  member.path = std::move(path);
  member.seed = seed;
  members_.push_back(std::move(member));
}

void CampaignSet::add_snapshots(std::vector<ScanSnapshot> snapshots, std::string label,
                                std::int64_t epoch_days) {
  add_snapshots(std::make_shared<const std::vector<ScanSnapshot>>(std::move(snapshots)),
                std::move(label), epoch_days);
}

void CampaignSet::add_snapshots(std::shared_ptr<const std::vector<ScanSnapshot>> snapshots,
                                std::string label, std::int64_t epoch_days) {
  CampaignMember member;
  member.snapshots = std::move(snapshots);
  member.label = std::move(label);
  member.epoch_days = epoch_days;
  members_.push_back(std::move(member));
}

CampaignSet::OpenMember CampaignSet::open(std::size_t index,
                                          std::uint32_t chunk_records) const {
  const CampaignMember& member = members_.at(index);
  OpenMember open;
  if (member.file_backed()) {
    open.reader_ = std::make_unique<SnapshotReader>(member.path, member.seed);
    open.source_ = std::make_unique<ReaderRecordSource>(*open.reader_);
  } else {
    open.pin_ = member.snapshots;
    open.source_ = std::make_unique<SnapshotVectorSource>(*member.snapshots, chunk_records);
  }
  if (open.source_->week_count() == 0) {
    throw SnapshotError("campaign series: member " + std::to_string(index) +
                        " holds no measurement");
  }
  open.final_meta_ = open.source_->week_meta(open.source_->week_count() - 1);
  if (!campaign_declared(open.final_meta_)) {
    open.final_meta_.campaign_label = member.label;
    open.final_meta_.campaign_epoch_days = member.epoch_days;
  }
  return open;
}

std::vector<SnapshotMeta> CampaignSet::final_metas(std::uint32_t chunk_records) const {
  std::vector<SnapshotMeta> metas;
  metas.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    metas.push_back(open(i, chunk_records).final_meta());
  }
  return metas;
}

void CampaignSet::validate(std::uint32_t chunk_records) const {
  validate_campaign_chain(final_metas(chunk_records));
}

// ---------------------------------------------------------- SeriesBuilder

namespace {

std::uint64_t count_deficient(const std::vector<HostPosture>& postures) {
  std::uint64_t deficient = 0;
  for (const HostPosture& p : postures) deficient += p.deficient;
  return deficient;
}

void split_by_protocol(const std::vector<HostPosture>& postures, SeriesMemberStats& stats) {
  for (const HostPosture& p : postures) {
    stats.hosts_by_protocol[p.protocol]++;
    stats.deficient_by_protocol[p.protocol] += p.deficient;
  }
}

}  // namespace

double SeriesAnalysis::mean_link_confidence() const {
  return mean_match_confidence(links_by_address, links_by_cert_corroborated, links_by_cert_bare);
}

SeriesBuilder::SeriesBuilder(bool validate_ordering) : validate_ordering_(validate_ordering) {}

void SeriesBuilder::close_timeline(SeriesAnalysis& out, const Timeline& state,
                                   bool censored) const {
  if (out.timelines.length_histogram.size() <= state.length) {
    out.timelines.length_histogram.resize(state.length + 1, 0);
  }
  out.timelines.length_histogram[state.length] += 1;
  // A full-span timeline is by definition still alive at the last member,
  // so only a censored (end-of-series) close can ever satisfy this; a
  // retirement close always has length < the member count.
  if (censored && state.first_member == 0 && state.length == finals_.size()) {
    ++out.timelines.full_span;
  }
  if (censored) ++out.timelines.censored;
  if (state.started_insecure) {
    ++out.remediation.insecure_at_start;
    if (state.secure_after > 0) {
      const auto k = static_cast<std::size_t>(state.secure_after);
      if (out.remediation.steps_to_secure.size() <= k) {
        out.remediation.steps_to_secure.resize(k + 1, 0);
      }
      out.remediation.steps_to_secure[k] += 1;
      ++out.remediation.remediated;
    } else {
      ++out.remediation.never_remediated;
      if (censored) ++out.remediation.censored;
    }
    if (state.relapsed) ++out.remediation.relapsed;
  }
}

void SeriesBuilder::add_member(SnapshotMeta final_meta, std::vector<HostPosture> postures) {
  if (validate_ordering_) {
    std::vector<SnapshotMeta> chain = finals_;
    chain.push_back(final_meta);
    validate_campaign_chain(chain);  // throws before any state mutates
  }
  const std::size_t m = finals_.size();
  if (m == 0) {
    // Member 0: one fresh timeline per host.
    active_.resize(postures.size());
    for (std::size_t i = 0; i < postures.size(); ++i) {
      active_[i] = {0, 1, postures[i].policy_bucket < 2,
                    postures[i].policy_bucket == 2 ? 0 : -1, false};
    }
    acc_.timelines.total = postures.size();
    SeriesMemberStats stats;
    stats.meta = final_meta;
    stats.hosts = postures.size();
    stats.deficient = count_deficient(postures);
    split_by_protocol(postures, stats);
    stats.arrived = postures.size();
    acc_.members.push_back(std::move(stats));
    finals_.push_back(std::move(final_meta));
    current_ = std::move(postures);
    return;
  }

  // One match + one tally against the retained previous postures — no
  // earlier member is touched, whatever m is.
  const MatchResult match = match_postures(current_, postures);
  CampaignDiff step = tally_step(current_, postures, match);
  step.base_week = finals_[m - 1];
  step.followup_week = final_meta;
  acc_.links_by_address += step.matched_by_address;
  acc_.links_by_cert_corroborated += step.cert_matches_corroborated;
  acc_.links_by_cert_bare += step.cert_matches_bare;

  SeriesMemberStats stats;
  stats.meta = final_meta;
  stats.hosts = postures.size();
  stats.deficient = count_deficient(postures);
  split_by_protocol(postures, stats);
  stats.matched_from_previous = step.matched();
  stats.arrived = step.arrived;
  acc_.members[m - 1].retired_into_next = step.retired;
  acc_.members.push_back(std::move(stats));
  acc_.steps.push_back(std::move(step));

  std::vector<Timeline> next_active(postures.size());
  for (std::uint32_t bi = 0; bi < postures.size(); ++bi) {
    const std::uint32_t ai = match.base_of[bi];
    if (ai == MatchResult::kUnmatched) {
      // Fresh arrival: a new timeline starts here.
      next_active[bi] = {static_cast<std::uint32_t>(m), 1, postures[bi].policy_bucket < 2,
                         postures[bi].policy_bucket == 2 ? 0 : -1, false};
      ++acc_.timelines.total;
      continue;
    }
    Timeline state = active_[ai];
    ++state.length;
    if (postures[bi].policy_bucket == 2) {
      if (state.secure_after < 0) state.secure_after = static_cast<std::int32_t>(state.length - 1);
    } else if (state.secure_after >= 0) {
      state.relapsed = true;  // had reached secure, dropped below again
    }
    next_active[bi] = state;
  }
  // Timelines without a successor close now (their host retired).
  for (std::uint32_t ai = 0; ai < current_.size(); ++ai) {
    if (!match.base_matched[ai]) close_timeline(acc_, active_[ai], /*censored=*/false);
  }
  current_ = std::move(postures);
  active_ = std::move(next_active);
  finals_.push_back(std::move(final_meta));
}

SeriesAnalysis SeriesBuilder::analysis() const {
  const std::size_t n = finals_.size();
  if (n < 2) {
    throw SnapshotError("campaign series needs >= 2 members (got " + std::to_string(n) + ")");
  }
  SeriesAnalysis out = acc_;
  // Retirement closes only ever reach length n-1 / secure_after n-2, so
  // sizing to the batch shape here is always a grow, never a truncation.
  if (out.timelines.length_histogram.size() < n + 1) {
    out.timelines.length_histogram.resize(n + 1, 0);
  }
  if (out.remediation.steps_to_secure.size() < n) out.remediation.steps_to_secure.resize(n, 0);
  // Every still-live timeline closes censored — cut by the end of
  // observation, not by churn. The builder itself keeps them live.
  for (const Timeline& state : active_) close_timeline(out, state, /*censored=*/true);
  return out;
}

std::size_t SeriesBuilder::resident_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += current_.capacity() * sizeof(HostPosture);
  for (const HostPosture& p : current_) bytes += p.fps.capacity() * sizeof(std::uint64_t);
  bytes += active_.capacity() * sizeof(Timeline);
  bytes += finals_.capacity() * sizeof(SnapshotMeta);
  for (const SnapshotMeta& meta : finals_) bytes += meta.campaign_label.capacity();
  bytes += acc_.members.capacity() * sizeof(SeriesMemberStats);
  bytes += acc_.steps.capacity() * sizeof(CampaignDiff);
  bytes += acc_.timelines.length_histogram.capacity() * sizeof(std::uint64_t);
  bytes += acc_.remediation.steps_to_secure.capacity() * sizeof(std::uint64_t);
  return bytes;
}

// --------------------------------------------------------- analyze_series

namespace {

/// Postures for one opened member: the sketch sidecar when enabled,
/// file-backed, present and fingerprint-valid; the posture pass
/// otherwise. A stale sidecar throws (read_posture_sketch) — it is never
/// silently skipped.
std::vector<HostPosture> member_postures(const CampaignSet& set, std::size_t index,
                                         const CampaignSet::OpenMember& member,
                                         const SeriesOptions& options, ThreadPool& pool) {
  if (options.use_sketches && member.reader() != nullptr) {
    const std::string& path = set.member(index).path;
    auto sketched = read_posture_sketch(posture_sketch_path(path), path,
                                        member.reader()->file_fingerprint(),
                                        member.reader()->snapshots().back().host_count);
    if (sketched) return *std::move(sketched);
  }
  return collect_postures(member.source(), pool);
}

}  // namespace

SeriesAnalysis analyze_series(const CampaignSet& set, const SeriesOptions& options) {
  const obs::WallTimer pass_timer(obs::Metric::series_pass_wall_us);
  if (set.size() < 2) {
    throw SnapshotError("campaign series needs >= 2 members (got " +
                        std::to_string(set.size()) + ")");
  }
  ThreadPool pool(options.threads);
  SeriesBuilder builder(options.validate_ordering);
  // Each member is opened exactly once, when the walk reaches it; its
  // identity is validated against the chain seen so far before any of
  // its postures are produced, so an out-of-order member fails before
  // its posture work (and a truncated file fails at its open).
  for (std::size_t m = 0; m < set.size(); ++m) {
    const CampaignSet::OpenMember member = set.open(m, options.chunk_records);
    if (options.validate_ordering) {
      std::vector<SnapshotMeta> chain = builder.finals();
      chain.push_back(member.final_meta());
      validate_campaign_chain(chain);
    }
    builder.add_member(member.final_meta(),
                       member_postures(set, m, member, options, pool));
  }
  return builder.analysis();
}

// ----------------------------------------------------------------- report

void append_series_analysis_fields(JsonWriter& json, const SeriesAnalysis& analysis) {
  json.key("members").begin_array();
  for (const SeriesMemberStats& member : analysis.members) {
    json.begin_object()
        .field("label", member.meta.campaign_label)
        .field("epoch_days", static_cast<std::uint64_t>(member.meta.campaign_epoch_days))
        .field("date_days", static_cast<std::uint64_t>(member.meta.date_days))
        .field("hosts", member.hosts)
        .field("deficient", member.deficient)
        .field("matched_from_previous", member.matched_from_previous)
        .field("arrived", member.arrived)
        .field("retired_into_next", member.retired_into_next);
    json.key("protocols").begin_object();
    for (const auto& [protocol, hosts] : member.hosts_by_protocol) {
      const auto it = member.deficient_by_protocol.find(protocol);
      json.key(protocol_name(protocol))
          .begin_object()
          .field("hosts", hosts)
          .field("deficient", it == member.deficient_by_protocol.end() ? 0 : it->second)
          .end_object();
    }
    json.end_object().end_object();
  }
  json.end_array();
  json.key("steps").begin_array();
  for (const CampaignDiff& step : analysis.steps) {
    json.begin_object();
    append_campaign_diff_fields(json, step);
    json.end_object();
  }
  json.end_array();
  json.key("timelines")
      .begin_object()
      .field("total", analysis.timelines.total)
      .field("full_span", analysis.timelines.full_span)
      .field("censored", analysis.timelines.censored)
      .key("length_histogram")
      .begin_array();
  for (std::size_t len = 1; len < analysis.timelines.length_histogram.size(); ++len) {
    json.begin_object()
        .field("members", static_cast<std::uint64_t>(len))
        .field("timelines", analysis.timelines.length_histogram[len])
        .end_object();
  }
  json.end_array().end_object();
  json.key("remediation")
      .begin_object()
      .field("insecure_at_start", analysis.remediation.insecure_at_start)
      .field("remediated", analysis.remediation.remediated)
      .field("never_remediated", analysis.remediation.never_remediated)
      .field("relapsed", analysis.remediation.relapsed)
      .field("censored", analysis.remediation.censored)
      .key("steps_to_secure")
      .begin_array();
  for (std::size_t k = 1; k < analysis.remediation.steps_to_secure.size(); ++k) {
    json.begin_object()
        .field("campaigns", static_cast<std::uint64_t>(k))
        .field("timelines", analysis.remediation.steps_to_secure[k])
        .end_object();
  }
  json.end_array().end_object();
  json.key("match_evidence")
      .begin_object()
      .field("address", analysis.links_by_address)
      .field("certificate_corroborated", analysis.links_by_cert_corroborated)
      .field("certificate_bare", analysis.links_by_cert_bare)
      .key("link_confidence")
      .begin_object()
      .field("address", match_confidence(MatchEvidence::address))
      .field("certificate_corroborated", match_confidence(MatchEvidence::cert_corroborated))
      .field("certificate_bare", match_confidence(MatchEvidence::cert_bare))
      .end_object()
      .field("mean_confidence", analysis.mean_link_confidence())
      .end_object();
}

std::string series_analysis_json(const SeriesAnalysis& analysis) {
  JsonWriter json;
  json.begin_object();
  append_series_analysis_fields(json, analysis);
  json.end_object();
  return json.str();
}

}  // namespace opcua_study
