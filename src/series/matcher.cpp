// The shared posture/match/tally core. Determinism rests on two
// invariants mirrored from the Aggregator: posture partials are produced
// by workers in any order but appended in chunk-index order (so the
// posture vectors are record-ordered), and every matching pass iterates
// those vectors front to back — ties and duplicates therefore resolve
// identically for any thread count.
#include "series/matcher.hpp"

#include <unordered_map>

#include "util/rng.hpp"

namespace opcua_study {

namespace {

HostPosture absorb(const HostScanRecord& host) {
  HostPosture p;
  p.ip = host.ip;
  p.port = host.port;
  p.protocol = host.protocol;
  p.asn = host.asn;
  p.uri_hash = host.application_uri.empty() ? 0 : hash64(host.application_uri);

  MessageSecurityMode strongest_mode = MessageSecurityMode::Invalid;
  for (const auto mode : host.advertised_modes()) {
    if (security_mode_rank(mode) > security_mode_rank(strongest_mode)) strongest_mode = mode;
  }
  switch (strongest_mode) {
    case MessageSecurityMode::Sign: p.mode_bucket = 1; break;
    case MessageSecurityMode::SignAndEncrypt: p.mode_bucket = 2; break;
    default: p.mode_bucket = 0; break;  // None or no endpoints
  }

  const SecurityPolicy max = strongest_policy(host);
  const auto& info = policy_info(max);
  p.policy_bucket = info.secure ? 2 : info.deprecated ? 1 : 0;
  for (const auto policy : host.advertised_policies()) {
    p.supports_deprecated |= policy_info(policy).deprecated;
  }
  p.anonymous = host.anonymous_offered;
  // The paper's §5.2 deficiency definition — the assess/ reference helper,
  // so the diff can never drift from the per-campaign analyses.
  p.deficient = is_deficient(host);

  p.fps = host.distinct_cert_fingerprints();
  std::sort(p.fps.begin(), p.fps.end());
  p.fps.erase(std::unique(p.fps.begin(), p.fps.end()), p.fps.end());
  return p;
}

// ------------------------------------------- v6 columnar fast path ----

/// Per-dictionary-entry facts the posture absorb needs — computed once per
/// distinct certificate in the file instead of once per host occurrence.
struct DictPostureEntry {
  std::uint64_t fp64 = 0;
  bool parsed = false;
  HashAlgorithm hash = HashAlgorithm::sha1;
  std::size_t key_bits = 0;
};

std::vector<DictPostureEntry> build_posture_dict(const SnapshotReader& reader) {
  std::vector<DictPostureEntry> dict;
  dict.reserve(reader.cert_count());
  for (std::uint32_t id = 0; id < reader.cert_count(); ++id) {
    DictPostureEntry entry;
    entry.fp64 = reader.cert_fp64(id);
    try {
      const Certificate cert = x509_parse(reader.cert_der(id));
      entry.parsed = true;
      entry.hash = cert.signature_hash;
      entry.key_bits = cert.key_bits();
    } catch (const DecodeError&) {
    }
    dict.push_back(entry);
  }
  return dict;
}

/// Columnar mirror of absorb(): every posture field is either a fixed
/// column, a mask derivation (policy table rank order equals enum order,
/// so the highest set bit is the strongest policy), or a dictionary
/// lookup keyed by the record's cert id head list. The var record is only
/// touched for that head list — strings, endpoints and nodes stay encoded.
HostPosture absorb_columnar(const ColumnView& view, std::size_t i,
                            const std::vector<DictPostureEntry>& dict,
                            std::vector<std::uint32_t>& ids) {
  HostPosture p;
  p.ip = view.ip[i];
  p.port = view.port[i];
  p.asn = view.asn[i];
  p.uri_hash = view.uri_hash[i];
  if (view.flags[i] & snapshot_flags::kProtocol) {
    // The protocol tail is the last byte of the var slice (after the
    // scan-quality tail, when both are present) — no cursor walk needed.
    const std::uint32_t end = view.var_offsets[i + 1];
    if (end == view.var_offsets[i]) {
      throw DecodeError("var record too short for its protocol tail");
    }
    const std::uint8_t code = view.var_blob[end - 1];
    if (code == 0 || code >= kProtocolCount) {
      throw DecodeError("snapshot record: invalid protocol value " + std::to_string(code));
    }
    p.protocol = static_cast<ProtocolId>(code);
  }

  const std::uint8_t mode_mask = view.mode_mask[i];
  p.mode_bucket = (mode_mask & (1u << static_cast<int>(MessageSecurityMode::SignAndEncrypt)))  ? 2
                  : (mode_mask & (1u << static_cast<int>(MessageSecurityMode::Sign))) ? 1
                                                                                      : 0;

  const std::uint8_t policy_mask = view.policy_mask[i];
  SecurityPolicy max = SecurityPolicy::None;
  bool supports_deprecated = false;
  for (int code = 0; code <= 5; ++code) {
    if (!(policy_mask & (1u << code))) continue;
    const auto policy = static_cast<SecurityPolicy>(code);
    max = policy;
    supports_deprecated |= policy_info(policy).deprecated;
  }
  const auto& info = policy_info(max);
  p.policy_bucket = info.secure ? 2 : info.deprecated ? 1 : 0;
  p.supports_deprecated = supports_deprecated;
  p.anonymous = (view.flags[i] & snapshot_flags::kAnonymousOffered) != 0;

  ids.clear();
  VarRecordCursor cursor(view.var_record(i));
  cursor.cert_ids(ids);
  const DictPostureEntry* primary = nullptr;
  for (const std::uint32_t id : ids) {
    if (id >= dict.size()) {
      throw DecodeError("certificate id " + std::to_string(id) + " out of dictionary range (" +
                        std::to_string(dict.size()) + " entries)");
    }
    const DictPostureEntry& entry = dict[id];
    p.fps.push_back(entry.fp64);
    if (primary == nullptr && entry.parsed) primary = &entry;
  }
  const bool cert_too_weak =
      primary != nullptr && max != SecurityPolicy::None &&
      classify_certificate(max, primary->hash, primary->key_bits) == CertConformance::too_weak;
  p.deficient = max == SecurityPolicy::None || info.deprecated || cert_too_weak || p.anonymous;

  std::sort(p.fps.begin(), p.fps.end());
  p.fps.erase(std::unique(p.fps.begin(), p.fps.end()), p.fps.end());
  return p;
}

std::uint64_t address_key(const HostPosture& p) {
  // Protocol in the high bits: the same (ip, port) answering a different
  // protocol is a different endpoint identity.
  return static_cast<std::uint64_t>(p.protocol) << 48 |
         static_cast<std::uint64_t>(p.ip) << 16 | p.port;
}

/// Certificate-match corroboration: a second identity signal agreeing
/// across the link. Zero ASNs / empty URIs never corroborate — absence of
/// information on both sides is not agreement.
bool corroborated(const HostPosture& a, const HostPosture& b) {
  if (a.asn != 0 && a.asn == b.asn) return true;
  if (a.uri_hash != 0 && a.uri_hash == b.uri_hash) return true;
  return false;
}

}  // namespace

double match_confidence(MatchEvidence evidence) {
  switch (evidence) {
    case MatchEvidence::address: return 1.0;
    case MatchEvidence::cert_corroborated: return 0.9;
    case MatchEvidence::cert_bare: return 0.6;
    case MatchEvidence::none: break;
  }
  return 0.0;
}

double mean_match_confidence(std::uint64_t by_address, std::uint64_t by_cert_corroborated,
                             std::uint64_t by_cert_bare) {
  const std::uint64_t links = by_address + by_cert_corroborated + by_cert_bare;
  if (links == 0) return 0;
  const double weighted =
      static_cast<double>(by_address) * match_confidence(MatchEvidence::address) +
      static_cast<double>(by_cert_corroborated) *
          match_confidence(MatchEvidence::cert_corroborated) +
      static_cast<double>(by_cert_bare) * match_confidence(MatchEvidence::cert_bare);
  return weighted / static_cast<double>(links);
}

std::vector<HostPosture> collect_postures(const RecordSource& source, ThreadPool& pool) {
  const std::size_t final_week = source.week_count() - 1;
  std::vector<std::size_t> final_chunks;
  for (std::size_t c = 0; c < source.chunk_count(); ++c) {
    if (source.chunk_week(c) == final_week) final_chunks.push_back(c);
  }
  std::vector<std::vector<HostPosture>> partials(final_chunks.size());
  std::vector<HostPosture> postures;
  postures.reserve(source.week_meta(final_week).host_count);
  const SnapshotReader* col = source.columnar_reader();
  std::vector<DictPostureEntry> dict;
  if (col != nullptr) dict = build_posture_dict(*col);
  // Early prefix merge: completed chunk partials are appended (in chunk
  // order) and freed while later chunks are still being absorbed.
  pool.parallel_for_merged(
      final_chunks.size(),
      [&](std::size_t i) {
        if (col != nullptr) {
          const std::size_t chunk = final_chunks[i];
          const ColumnView view = col->column_view(chunk);
          try {
            std::vector<std::uint32_t> ids;
            partials[i].reserve(view.records);
            for (std::size_t r = 0; r < view.records; ++r) {
              partials[i].push_back(absorb_columnar(view, r, dict, ids));
            }
          } catch (const DecodeError& e) {
            throw SnapshotError("corrupt chunk " + std::to_string(chunk) + " (v6, chunk at byte " +
                                std::to_string(col->chunks()[chunk].file_offset) +
                                "): " + e.what());
          }
          return;
        }
        source.visit_chunk(final_chunks[i],
                           [&](const HostScanRecord& host) { partials[i].push_back(absorb(host)); });
      },
      [&](std::size_t i) {
        for (auto& p : partials[i]) postures.push_back(std::move(p));
        partials[i] = {};
      });
  return postures;
}

MatchResult match_postures(const std::vector<HostPosture>& base,
                           const std::vector<HostPosture>& followup) {
  MatchResult match;
  match.base_of.assign(followup.size(), MatchResult::kUnmatched);
  match.evidence.assign(followup.size(), MatchEvidence::none);
  match.base_matched.assign(base.size(), false);

  // ---- pass 1: match by address -----------------------------------------
  std::unordered_map<std::uint64_t, std::uint32_t> base_by_address;
  base_by_address.reserve(base.size());
  for (std::uint32_t i = 0; i < base.size(); ++i) {
    base_by_address.emplace(address_key(base[i]), i);  // first record wins
  }
  for (std::uint32_t bi = 0; bi < followup.size(); ++bi) {
    const auto it = base_by_address.find(address_key(followup[bi]));
    if (it == base_by_address.end() || match.base_matched[it->second]) continue;
    match.base_of[bi] = it->second;
    match.evidence[bi] = MatchEvidence::address;
    match.base_matched[it->second] = true;
  }

  // ---- pass 2: re-identify churned hosts by certificate fingerprint ----
  // A fingerprint is a usable identity only when it points at exactly one
  // unmatched host on each side; reused certificates identify nobody.
  struct FpSlot {
    std::uint32_t count = 0;
    std::uint32_t index = 0;
  };
  std::unordered_map<std::uint64_t, FpSlot> base_fps;
  for (std::uint32_t ai = 0; ai < base.size(); ++ai) {
    if (match.base_matched[ai]) continue;
    for (const std::uint64_t fp : base[ai].fps) {
      FpSlot& slot = base_fps[fp];
      ++slot.count;
      slot.index = ai;
    }
  }
  std::unordered_map<std::uint64_t, std::uint32_t> followup_fp_count;
  for (std::uint32_t bi = 0; bi < followup.size(); ++bi) {
    if (match.base_of[bi] != MatchResult::kUnmatched) continue;
    for (const std::uint64_t fp : followup[bi].fps) ++followup_fp_count[fp];
  }
  for (std::uint32_t bi = 0; bi < followup.size(); ++bi) {
    if (match.base_of[bi] != MatchResult::kUnmatched) continue;
    for (const std::uint64_t fp : followup[bi].fps) {
      const auto it = base_fps.find(fp);
      if (it == base_fps.end() || it->second.count != 1) continue;
      if (followup_fp_count[fp] != 1 || match.base_matched[it->second.index]) continue;
      // One device serving two protocols reuses its certificate across
      // them; that never links an OPC UA identity to an MQTT one.
      if (base[it->second.index].protocol != followup[bi].protocol) continue;
      match.base_of[bi] = it->second.index;
      match.evidence[bi] = corroborated(base[it->second.index], followup[bi])
                               ? MatchEvidence::cert_corroborated
                               : MatchEvidence::cert_bare;
      match.base_matched[it->second.index] = true;
      break;
    }
  }
  return match;
}

CampaignDiff tally_step(const std::vector<HostPosture>& base,
                        const std::vector<HostPosture>& followup, const MatchResult& match) {
  CampaignDiff diff;
  diff.base_hosts = base.size();
  diff.followup_hosts = followup.size();

  for (const HostPosture& p : base) {
    ProtocolDiffRow& row = diff.by_protocol[p.protocol];
    ++row.base_hosts;
    row.base_deficient += p.deficient;
  }

  for (std::uint32_t bi = 0; bi < followup.size(); ++bi) {
    ProtocolDiffRow& proto_row = diff.by_protocol[followup[bi].protocol];
    ++proto_row.followup_hosts;
    proto_row.followup_deficient += followup[bi].deficient;
    if (match.base_of[bi] == MatchResult::kUnmatched) {
      ++diff.arrived;
      continue;
    }
    ++proto_row.matched;
    const HostPosture& from = base[match.base_of[bi]];
    const HostPosture& to = followup[bi];
    switch (match.evidence[bi]) {
      case MatchEvidence::address: ++diff.matched_by_address; break;
      case MatchEvidence::cert_corroborated:
        ++diff.matched_by_certificate;
        ++diff.cert_matches_corroborated;
        break;
      case MatchEvidence::cert_bare:
        ++diff.matched_by_certificate;
        ++diff.cert_matches_bare;
        break;
      case MatchEvidence::none: break;  // unreachable: handled above
    }
    ++diff.mode_transitions.counts[from.mode_bucket][to.mode_bucket];
    ++diff.policy_transitions.counts[from.policy_bucket][to.policy_bucket];

    if (from.supports_deprecated && to.supports_deprecated) ++diff.deprecated_retained;
    if (from.supports_deprecated && !to.supports_deprecated) ++diff.deprecated_dropped;
    if (!from.supports_deprecated && to.supports_deprecated) ++diff.deprecated_adopted;
    if (from.anonymous && to.anonymous) ++diff.anonymous_retained;
    if (from.anonymous && !to.anonymous) ++diff.anonymous_dropped;
    if (!from.anonymous && to.anonymous) ++diff.anonymous_adopted;

    if (from.fps.empty() && to.fps.empty()) {
      ++diff.certs_absent;
    } else if (from.fps == to.fps) {
      ++diff.certs_verbatim;
    } else if (from.fps.empty()) {
      ++diff.certs_gained;
    } else if (to.fps.empty()) {
      ++diff.certs_lost;
    } else {
      bool overlap = false;
      for (const std::uint64_t fp : to.fps) {
        overlap |= std::binary_search(from.fps.begin(), from.fps.end(), fp);
      }
      if (overlap) {
        ++diff.certs_rotated;
      } else {
        ++diff.certs_renewed;
      }
    }

    if (from.deficient && to.deficient) ++diff.still_deficient;
    if (from.deficient && !to.deficient) ++diff.remediated;
    if (!from.deficient && to.deficient) ++diff.regressed;
    if (!from.deficient && !to.deficient) ++diff.never_deficient;
  }
  for (std::uint32_t ai = 0; ai < base.size(); ++ai) diff.retired += !match.base_matched[ai];
  return diff;
}

}  // namespace opcua_study
