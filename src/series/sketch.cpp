// Posture sketch sidecar serialization (format in sketch.hpp).
#include "series/sketch.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "scanner/snapshot_io.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {

constexpr std::uint32_t kSketchMagic = 0x484b5350u;  // 'PSKH' little-endian
constexpr std::uint32_t kSketchVersion = 1;
// magic + version + fingerprint + count.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Bounds-checked little-endian cursor over the loaded sidecar bytes.
struct SketchCursor {
  const std::string& bytes;
  const std::string& sketch_path;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > bytes.size()) {
      throw SnapshotError("posture sketch '" + sketch_path + "' is truncated: need " +
                          std::to_string(n) + " bytes at offset " + std::to_string(pos) +
                          ", file holds " + std::to_string(bytes.size()));
    }
  }
  std::uint64_t take(std::size_t n) {
    need(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[pos + i])) << (8 * i);
    }
    pos += n;
    return v;
  }
  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
};

}  // namespace

std::string posture_sketch_path(const std::string& snapshot_path) {
  return snapshot_path + ".sketch";
}

void write_posture_sketch(const std::string& sketch_path, std::uint64_t snapshot_fingerprint,
                          const std::vector<HostPosture>& postures) {
  std::string bytes;
  bytes.reserve(kHeaderBytes + postures.size() * 32 + 8);
  put_u32(bytes, kSketchMagic);
  put_u32(bytes, kSketchVersion);
  put_u64(bytes, snapshot_fingerprint);
  put_u64(bytes, static_cast<std::uint64_t>(postures.size()));
  for (const HostPosture& p : postures) {
    put_u32(bytes, p.ip);
    put_u16(bytes, p.port);
    bytes.push_back(static_cast<char>(static_cast<std::uint8_t>(p.protocol)));
    const std::uint8_t flags = static_cast<std::uint8_t>((p.supports_deprecated ? 1u : 0u) |
                                                         (p.anonymous ? 2u : 0u) |
                                                         (p.deficient ? 4u : 0u));
    bytes.push_back(static_cast<char>(flags));
    put_u32(bytes, p.asn);
    put_u64(bytes, p.uri_hash);
    bytes.push_back(static_cast<char>(p.mode_bucket));
    bytes.push_back(static_cast<char>(p.policy_bucket));
    if (p.fps.size() > 0xffff) {
      throw SnapshotError("posture sketch '" + sketch_path + "': host carries " +
                          std::to_string(p.fps.size()) + " fingerprints (format cap 65535)");
    }
    put_u16(bytes, static_cast<std::uint16_t>(p.fps.size()));
    for (const std::uint64_t fp : p.fps) put_u64(bytes, fp);
  }
  put_u64(bytes, hash64(std::string_view(bytes).substr(kHeaderBytes)));

  // Write-then-rename: an interrupted write leaves only a .tmp, never a
  // readable half-sketch.
  const std::string tmp = sketch_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("cannot open posture sketch for writing: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw SnapshotError("short write to posture sketch: " + tmp);
  }
  if (std::rename(tmp.c_str(), sketch_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot move posture sketch into place: " + sketch_path);
  }
}

std::optional<std::vector<HostPosture>> read_posture_sketch(const std::string& sketch_path,
                                                            const std::string& snapshot_path,
                                                            std::uint64_t snapshot_fingerprint,
                                                            std::uint64_t expected_postures) {
  std::ifstream in(sketch_path, std::ios::binary);
  if (!in) return std::nullopt;  // no sidecar: caller runs the posture pass
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  SketchCursor c{bytes, sketch_path};
  if (c.u32() != kSketchMagic) {
    throw SnapshotError("posture sketch '" + sketch_path + "' has bad magic (not a sketch file)");
  }
  const std::uint32_t version = c.u32();
  if (version != kSketchVersion) {
    throw SnapshotError("posture sketch '" + sketch_path + "' has unsupported version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSketchVersion) + ")");
  }
  const std::uint64_t stamped = c.u64();
  if (stamped != snapshot_fingerprint) {
    throw SnapshotError(
        "stale posture sketch: sidecar '" + sketch_path + "' was written for a snapshot with "
        "fingerprint " + std::to_string(stamped) + ", but snapshot '" + snapshot_path +
        "' now fingerprints as " + std::to_string(snapshot_fingerprint) +
        " — the snapshot changed after the sketch was cut; delete the sidecar to regenerate it");
  }
  const std::uint64_t count = c.u64();
  if (count != expected_postures) {
    throw SnapshotError("posture sketch '" + sketch_path + "' holds " + std::to_string(count) +
                        " postures but snapshot '" + snapshot_path +
                        "' reports a final host count of " + std::to_string(expected_postures));
  }
  if (bytes.size() < kHeaderBytes + 8) {
    throw SnapshotError("posture sketch '" + sketch_path +
                        "' is truncated: no room for the payload checksum");
  }
  std::uint64_t stored_checksum = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    stored_checksum |=
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[bytes.size() - 8 + i]))
        << (8 * i);
  }
  if (hash64(std::string_view(bytes).substr(kHeaderBytes, bytes.size() - kHeaderBytes - 8)) !=
      stored_checksum) {
    throw SnapshotError("posture sketch '" + sketch_path +
                        "' failed its payload checksum (corrupt or tampered sidecar) for "
                        "snapshot '" + snapshot_path + "'");
  }

  std::vector<HostPosture> postures;
  postures.reserve(count);
  const std::size_t payload_end = bytes.size() - 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    HostPosture p;
    p.ip = c.u32();
    p.port = c.u16();
    p.protocol = static_cast<ProtocolId>(c.u8());
    const std::uint8_t flags = c.u8();
    p.supports_deprecated = (flags & 1u) != 0;
    p.anonymous = (flags & 2u) != 0;
    p.deficient = (flags & 4u) != 0;
    p.asn = c.u32();
    p.uri_hash = c.u64();
    p.mode_bucket = c.u8();
    p.policy_bucket = c.u8();
    const std::uint16_t fp_count = c.u16();
    p.fps.reserve(fp_count);
    for (std::uint16_t k = 0; k < fp_count; ++k) p.fps.push_back(c.u64());
    postures.push_back(std::move(p));
  }
  if (c.pos != payload_end) {
    throw SnapshotError("posture sketch '" + sketch_path + "' carries " +
                        std::to_string(payload_end - c.pos) + " trailing bytes after posture " +
                        std::to_string(count));
  }
  return postures;
}

std::vector<HostPosture> ensure_posture_sketch(const std::string& path, std::uint64_t seed,
                                               ThreadPool& pool) {
  const SnapshotReader reader(path, seed);
  if (reader.snapshots().empty()) {
    throw SnapshotError("posture sketch: snapshot '" + path + "' holds no measurement");
  }
  const std::uint64_t fingerprint = reader.file_fingerprint();
  const std::uint64_t hosts = reader.snapshots().back().host_count;
  const std::string sidecar = posture_sketch_path(path);
  if (auto cached = read_posture_sketch(sidecar, path, fingerprint, hosts)) {
    return *std::move(cached);
  }
  const ReaderRecordSource source(reader);
  std::vector<HostPosture> postures = collect_postures(source, pool);
  write_posture_sketch(sidecar, fingerprint, postures);
  return postures;
}

}  // namespace opcua_study
