// Posture sketch sidecars — the incremental-series substrate.
//
// A sketch is the collect_postures() output of one recorded campaign's
// final measurement, serialized next to the snapshot file it was cut
// from. Loading a sketch replaces the posture pass (decode every record
// of the final measurement) with a small sequential read: appending
// campaign N+1 to an N-member series then costs one posture pass over
// the new member plus one match, instead of re-walking all N+1 members.
//
// Staleness contract. Every sketch is stamped with the snapshot's
// structural fingerprint (SnapshotReader::file_fingerprint) at write
// time. A reader validates that stamp before anything else:
//   - sidecar absent            -> caller falls back to a posture pass;
//   - fingerprint mismatch      -> SnapshotError naming BOTH paths. A
//     stale sketch is never silently served and never silently ignored —
//     ignoring it would hide that a snapshot was swapped underneath its
//     derived data;
//   - short file / bad checksum -> SnapshotError naming the sidecar.
// Sketch contents are validated against the snapshot's final host count,
// and the payload carries its own hash64 checksum, so a truncated or
// bit-flipped sidecar fails loudly instead of feeding the matcher
// garbage postures.
//
// Format (little-endian, version 1):
//   u32 magic 'PSKH'   u32 version=1
//   u64 snapshot_fingerprint
//   u64 posture_count
//   per posture: u32 ip  u16 port  u8 protocol  u8 flags
//                (bit0 supports_deprecated, bit1 anonymous, bit2
//                 deficient)  u32 asn  u64 uri_hash  u8 mode_bucket
//                u8 policy_bucket  u16 fp_count  u64 fp*
//   u64 payload_checksum (hash64 over every byte after the header)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "series/matcher.hpp"

namespace opcua_study {

/// Sidecar path convention: `<snapshot path>.sketch`.
std::string posture_sketch_path(const std::string& snapshot_path);

/// Serialize `postures` (a campaign's final-measurement collect_postures
/// output, record-ordered) to `sketch_path`, stamped with
/// `snapshot_fingerprint`. Writes `<path>.tmp` then renames, so an
/// interrupted write never leaves a half-sketch that could load.
void write_posture_sketch(const std::string& sketch_path, std::uint64_t snapshot_fingerprint,
                          const std::vector<HostPosture>& postures);

/// Load the sketch at `sketch_path` for the snapshot at `snapshot_path`
/// whose structural fingerprint is `snapshot_fingerprint` and whose final
/// measurement holds `expected_postures` records.
///
/// Returns nullopt when no sidecar exists (callers run the posture pass).
/// Throws SnapshotError — naming both the sidecar and the snapshot — when
/// a sidecar exists but is stale (fingerprint mismatch), malformed, or
/// inconsistent with the snapshot's host count: a present-but-wrong
/// sketch must never be served and must never be silently skipped.
std::optional<std::vector<HostPosture>> read_posture_sketch(const std::string& sketch_path,
                                                            const std::string& snapshot_path,
                                                            std::uint64_t snapshot_fingerprint,
                                                            std::uint64_t expected_postures);

/// Ensure the snapshot at `path` (opened with `seed`) has a valid sketch
/// sidecar: loads and returns an existing valid one, otherwise runs the
/// posture pass on `pool` and writes the sidecar. Throws SnapshotError on
/// a stale sidecar (see read_posture_sketch) — delete the sidecar to
/// regenerate it deliberately.
std::vector<HostPosture> ensure_posture_sketch(const std::string& path, std::uint64_t seed,
                                               ThreadPool& pool);

}  // namespace opcua_study
