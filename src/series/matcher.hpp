// Host re-identification matcher — the shared core under src/diff/ (the
// N=2 pairwise diff) and src/series/ (the N-way trajectory analysis).
//
// A campaign's final measurement is reduced to a vector of HostPosture
// summaries (chunk-parallel, concatenated in chunk-index order, so the
// vector is record-ordered for any thread count). Two adjacent posture
// vectors are then matched in two passes:
//   1. by (ip, port) — the same endpoint answered again;
//   2. by unique certificate fingerprint — a churned IP re-identified by
//      the certificate it kept, accepted only when the fingerprint names
//      exactly one unmatched host on *each* side (a fleet-reused
//      certificate identifies nobody).
// Every accepted link carries an evidence grade: address matches are
// definitive; certificate matches are corroborated (same non-zero AS or
// same application URI on both sides) or bare (fingerprint only). The
// grade feeds the per-link confidence surfaced in campaign_diff_json and
// the series report, so re-identification quality is auditable.
//
// tally_step() folds one matched pair into the CampaignDiff counters —
// diff_campaigns() is exactly collect + match + tally, and analyze_series
// runs the same three calls per adjacent member pair, which is what makes
// the N=2 series reproduce the pairwise diff field for field.
#pragma once

#include "analysis/analysis.hpp"
#include "diff/diff.hpp"
#include "util/thread_pool.hpp"

namespace opcua_study {

/// Compact per-host summary: everything the matcher and the transition
/// tallies need, nothing else. Fingerprints are the first 8 bytes of the
/// SHA-1 thumbprint — 64 bits is collision-free in practice at study
/// scale and keeps two million summaries far below the decoded records.
struct HostPosture {
  Ipv4 ip = 0;
  std::uint16_t port = 0;
  /// Matching never crosses protocols: an OPC UA server and an MQTT broker
  /// on the same address are different hosts, and a certificate shared
  /// across the two (one device, two services) re-identifies neither.
  ProtocolId protocol = ProtocolId::opcua;
  std::uint32_t asn = 0;           // corroborating evidence for cert matches
  std::uint64_t uri_hash = 0;      // hash64(application_uri), 0 when empty
  std::uint8_t mode_bucket = 0;    // index into kModeBuckets
  std::uint8_t policy_bucket = 0;  // index into kPolicyBuckets
  bool supports_deprecated = false;
  bool anonymous = false;
  bool deficient = false;
  std::vector<std::uint64_t> fps;  // sorted, deduplicated

  friend bool operator==(const HostPosture&, const HostPosture&) = default;
};

/// How one follow-up host was linked to its base-side identity.
enum class MatchEvidence : std::uint8_t {
  none = 0,             // unmatched (arrival / timeline break)
  address,              // same (ip, port)
  cert_corroborated,    // unique fingerprint + same AS or application URI
  cert_bare,            // unique fingerprint only
};

/// Per-link confidence grade: how strongly the evidence class identifies
/// the host. Address re-observation is definitive; a unique certificate
/// with a second agreeing signal is nearly so; a bare fingerprint can in
/// principle be a transplanted disk image.
double match_confidence(MatchEvidence evidence);

/// Confidence-weighted mean over a population of accepted links (0 when
/// empty) — the one implementation behind CampaignDiff's per-step grade
/// and the series-level aggregate.
double mean_match_confidence(std::uint64_t by_address, std::uint64_t by_cert_corroborated,
                             std::uint64_t by_cert_bare);

/// Match of one (base, follow-up) posture-vector pair. Indices are into
/// the record-ordered posture vectors.
struct MatchResult {
  static constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> base_of;       // per follow-up index: base index
  std::vector<MatchEvidence> evidence;      // per follow-up index
  std::vector<bool> base_matched;           // per base index
};

/// Posture pass over a campaign's final measurement: chunk-parallel
/// absorb, chunk-ordered concatenation (the completed prefix is appended
/// as workers advance). Identical output for any thread count.
std::vector<HostPosture> collect_postures(const RecordSource& source, ThreadPool& pool);

/// The deterministic two-pass matcher. Both passes iterate the
/// record-ordered vectors front to back, so ties and duplicates resolve
/// identically on every run.
MatchResult match_postures(const std::vector<HostPosture>& base,
                           const std::vector<HostPosture>& followup);

/// Fold one matched pair into the diff counters (population, transition
/// matrices, deprecated/anonymous retention, certificate evolution,
/// deficiency evolution, match evidence). Campaign identity metadata is
/// the caller's to stamp.
CampaignDiff tally_step(const std::vector<HostPosture>& base,
                        const std::vector<HostPosture>& followup, const MatchResult& match);

}  // namespace opcua_study
