#include "study/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/trace.hpp"

namespace opcua_study {

namespace {

void sort_by_endpoint(std::vector<HostScanRecord>& hosts) {
  std::sort(hosts.begin(), hosts.end(), [](const HostScanRecord& a, const HostScanRecord& b) {
    return std::make_pair(a.ip, a.port) < std::make_pair(b.ip, b.port);
  });
}

ScanOptions legacy_options(int shards, int threads, std::size_t max_in_flight) {
  ScanOptions options;
  options.shards = shards;
  options.threads = threads;
  options.max_in_flight = max_in_flight;
  return options;
}

}  // namespace

ShardedCampaignConfig make_sharded_config(CampaignConfig campaign, const ScanOptions& options) {
  ShardedCampaignConfig config;
  campaign.max_in_flight = options.max_in_flight;
  campaign.protocols = options.protocols;
  config.campaign = std::move(campaign);
  config.shards = options.shards;
  config.threads = options.threads;
  config.faults = options.faults;
  config.fault_seed = options.fault_seed;
  return config;
}

void install_fault_plan(Network& net, const ShardedCampaignConfig& config) {
  if (!config.faults.enabled()) return;
  const std::uint64_t seed = config.fault_seed != 0 ? config.fault_seed : config.campaign.seed;
  net.set_fault_plan(std::make_unique<FaultPlan>(seed, config.faults));
}

std::uint64_t ShardedRunStats::max_simulated_us() const {
  std::uint64_t max_us = 0;
  for (const std::uint64_t us : shard_simulated_us) max_us = std::max(max_us, us);
  return max_us;
}

ScanSnapshot run_sharded_campaign(Deployer& deployer, int week,
                                  const ShardedCampaignConfig& config,
                                  ShardedRunStats* stats) {
  const int shards = std::max(1, config.shards);

  // Shard deployment stays on this thread (the Deployer memoises keys and
  // certificates across shards); the expensive part — RSA generation — is
  // parallelized inside deploy_week() via the KeyFactory prefetch pass.
  std::vector<std::unique_ptr<Network>> networks;
  networks.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    networks.push_back(std::make_unique<Network>());
    deployer.deploy_week(*networks.back(), week, ShardSpec{s, shards});
    install_fault_plan(*networks.back(), config);
  }

  // Scan every shard on its own worker; each campaign touches only its own
  // Network, so the workers share nothing but the shard counter.
  std::vector<ScanSnapshot> shard_snapshots(static_cast<std::size_t>(shards));
  std::atomic<int> next_shard{0};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int thread_count =
      std::min(shards, config.threads > 0 ? config.threads : static_cast<int>(hardware));
  auto worker = [&] {
    for (int s = next_shard.fetch_add(1); s < shards; s = next_shard.fetch_add(1)) {
      const obs::TraceScope scope(week, s);
      Campaign campaign(config.campaign, *networks[static_cast<std::size_t>(s)]);
      shard_snapshots[static_cast<std::size_t>(s)] = campaign.run(week);
    }
  };
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  if (stats != nullptr) {
    stats->shard_simulated_us.clear();
    for (const auto& net : networks) stats->shard_simulated_us.push_back(net->clock().now_us());
  }

  // Merge: counters sum; hosts sort by (ip, port) for a deterministic,
  // shard-count-independent result.
  ScanSnapshot merged;
  merged.measurement_index = week;
  merged.date_days = measurement_days(week);
  for (auto& snapshot : shard_snapshots) {
    merged.probes_sent += snapshot.probes_sent;
    merged.tcp_open_count += snapshot.tcp_open_count;
    for (auto& host : snapshot.hosts) merged.hosts.push_back(std::move(host));
  }
  if (!config.campaign.oracle_sweep && !shard_snapshots.empty()) {
    // LFSR mode: every shard walks the identical universe, so summing would
    // count the same probes `shards` times; one shard's walk is exactly the
    // unsharded probe count.
    merged.probes_sent = shard_snapshots.front().probes_sent;
  }
  sort_by_endpoint(merged.hosts);
  return merged;
}

SnapshotMeta run_sharded_campaign_streamed(Deployer& deployer, int week,
                                           const ShardedCampaignConfig& config,
                                           SnapshotWriter& writer, ShardedRunStats* stats) {
  const int shards = std::max(1, config.shards);
  std::vector<std::unique_ptr<Network>> networks;
  networks.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    networks.push_back(std::make_unique<Network>());
    deployer.deploy_week(*networks.back(), week, ShardSpec{s, shards});
    install_fault_plan(*networks.back(), config);
  }

  SnapshotMeta meta;
  meta.measurement_index = week;
  meta.date_days = measurement_days(week);
  writer.begin_snapshot(meta.measurement_index, meta.date_days);

  // Workers park finished shard snapshots; the caller drains them in
  // shard-index order and appends each batch to the writer, so writing
  // overlaps scanning and the written bytes never depend on completion
  // order. Each batch is freed as soon as it is written, and a worker may
  // not *start* a shard more than one window ahead of the drain cursor —
  // a straggling shard 0 therefore parks at most `window` batches, never
  // the whole measurement (the high-water-mark promise in the header).
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int thread_count =
      std::min(shards, config.threads > 0 ? config.threads : static_cast<int>(hardware));
  const int window = 2 * thread_count;
  std::mutex mu;
  std::condition_variable ready;   // caller waits: parked[s] filled
  std::condition_variable drained; // workers wait: drain cursor advanced
  std::vector<std::optional<ScanSnapshot>> parked(static_cast<std::size_t>(shards));
  int drain_cursor = 0;  // guarded by mu
  std::atomic<int> next_shard{0};
  auto worker = [&] {
    for (int s = next_shard.fetch_add(1); s < shards; s = next_shard.fetch_add(1)) {
      {
        std::unique_lock<std::mutex> lock(mu);
        drained.wait(lock, [&] { return s < drain_cursor + window; });
      }
      const obs::TraceScope scope(week, s);
      Campaign campaign(config.campaign, *networks[static_cast<std::size_t>(s)]);
      ScanSnapshot snapshot = campaign.run(week);
      sort_by_endpoint(snapshot.hosts);
      {
        std::lock_guard<std::mutex> lock(mu);
        parked[static_cast<std::size_t>(s)] = std::move(snapshot);
      }
      ready.notify_all();
    }
  };
  std::vector<std::thread> pool;
  if (thread_count > 1) {
    pool.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
  }

  std::uint64_t probes_sent = 0, tcp_open_count = 0, lfsr_probes = 0;
  for (int s = 0; s < shards; ++s) {
    ScanSnapshot snapshot;
    if (thread_count > 1) {
      {
        std::unique_lock<std::mutex> lock(mu);
        ready.wait(lock, [&] { return parked[static_cast<std::size_t>(s)].has_value(); });
        snapshot = std::move(*parked[static_cast<std::size_t>(s)]);
        parked[static_cast<std::size_t>(s)].reset();
        drain_cursor = s + 1;
      }
      drained.notify_all();
    } else {
      // Inline: scan shard s, write it, drop it — one shard resident.
      const obs::TraceScope scope(week, s);
      Campaign campaign(config.campaign, *networks[static_cast<std::size_t>(s)]);
      snapshot = campaign.run(week);
      sort_by_endpoint(snapshot.hosts);
    }
    probes_sent += snapshot.probes_sent;
    tcp_open_count += snapshot.tcp_open_count;
    if (s == 0) lfsr_probes = snapshot.probes_sent;
    for (const auto& host : snapshot.hosts) {
      writer.add_host(host);
      ++meta.host_count;
    }
  }
  for (auto& thread : pool) thread.join();

  if (!config.campaign.oracle_sweep) {
    // LFSR mode: every shard walks the identical universe (see the merge
    // in run_sharded_campaign); one shard's walk is the campaign's count.
    probes_sent = lfsr_probes;
  }
  meta.probes_sent = probes_sent;
  meta.tcp_open_count = tcp_open_count;
  writer.end_snapshot(meta.probes_sent, meta.tcp_open_count);

  if (stats != nullptr) {
    stats->shard_simulated_us.clear();
    for (const auto& net : networks) stats->shard_simulated_us.push_back(net->clock().now_us());
  }
  return meta;
}

ShardedStudy::ShardedStudy(const StudyConfig& config, const ScanOptions& options)
    : plan_(build_population_plan(config.seed)) {
  DeployConfig deploy_config;
  deploy_config.seed = config.seed;
  deploy_config.dummy_hosts = config.dummy_hosts;
  deploy_config.key_threads = config.key_threads;
  deploy_config.key_cache_path = config.key_cache_path;
  deployer_ = std::make_unique<Deployer>(plan_, deploy_config);

  KeyFactory scanner_keys(config.seed, config.key_cache_path);
  CampaignConfig campaign;
  campaign.seed = config.seed;
  campaign.exclusions = deployer_->exclusion_list();
  campaign.grabber.client = make_scanner_identity(config.seed, scanner_keys);
  campaign.grabber.traverse_address_space = config.traverse_address_space;
  config_ = make_sharded_config(std::move(campaign), options);
}

ShardedStudy::ShardedStudy(const StudyConfig& config, int shards, std::size_t max_in_flight,
                           int threads)
    : ShardedStudy(config, legacy_options(shards, threads, max_in_flight)) {}

ScanSnapshot run_measurement_sharded(const StudyConfig& config, int week,
                                     const ScanOptions& options) {
  ShardedStudy study(config, options);
  return run_sharded_campaign(study.deployer(), week, study.config());
}

ScanSnapshot run_measurement_sharded(const StudyConfig& config, int week, int shards,
                                     std::size_t max_in_flight, int threads) {
  return run_measurement_sharded(config, week, legacy_options(shards, threads, max_in_flight));
}

}  // namespace opcua_study
