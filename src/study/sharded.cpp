#include "study/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace opcua_study {

std::uint64_t ShardedRunStats::max_simulated_us() const {
  std::uint64_t max_us = 0;
  for (const std::uint64_t us : shard_simulated_us) max_us = std::max(max_us, us);
  return max_us;
}

ScanSnapshot run_sharded_campaign(Deployer& deployer, int week,
                                  const ShardedCampaignConfig& config,
                                  ShardedRunStats* stats) {
  const int shards = std::max(1, config.shards);

  // Shard deployment stays on this thread (the Deployer memoises keys and
  // certificates across shards); the expensive part — RSA generation — is
  // parallelized inside deploy_week() via the KeyFactory prefetch pass.
  std::vector<std::unique_ptr<Network>> networks;
  networks.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    networks.push_back(std::make_unique<Network>());
    deployer.deploy_week(*networks.back(), week, ShardSpec{s, shards});
  }

  // Scan every shard on its own worker; each campaign touches only its own
  // Network, so the workers share nothing but the shard counter.
  std::vector<ScanSnapshot> shard_snapshots(static_cast<std::size_t>(shards));
  std::atomic<int> next_shard{0};
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int thread_count =
      std::min(shards, config.threads > 0 ? config.threads : static_cast<int>(hardware));
  auto worker = [&] {
    for (int s = next_shard.fetch_add(1); s < shards; s = next_shard.fetch_add(1)) {
      Campaign campaign(config.campaign, *networks[static_cast<std::size_t>(s)]);
      shard_snapshots[static_cast<std::size_t>(s)] = campaign.run(week);
    }
  };
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  if (stats != nullptr) {
    stats->shard_simulated_us.clear();
    for (const auto& net : networks) stats->shard_simulated_us.push_back(net->clock().now_us());
  }

  // Merge: counters sum; hosts sort by (ip, port) for a deterministic,
  // shard-count-independent result.
  ScanSnapshot merged;
  merged.measurement_index = week;
  merged.date_days = measurement_days(week);
  for (auto& snapshot : shard_snapshots) {
    merged.probes_sent += snapshot.probes_sent;
    merged.tcp_open_count += snapshot.tcp_open_count;
    for (auto& host : snapshot.hosts) merged.hosts.push_back(std::move(host));
  }
  if (!config.campaign.oracle_sweep && !shard_snapshots.empty()) {
    // LFSR mode: every shard walks the identical universe, so summing would
    // count the same probes `shards` times; one shard's walk is exactly the
    // unsharded probe count.
    merged.probes_sent = shard_snapshots.front().probes_sent;
  }
  std::sort(merged.hosts.begin(), merged.hosts.end(),
            [](const HostScanRecord& a, const HostScanRecord& b) {
              return std::make_pair(a.ip, a.port) < std::make_pair(b.ip, b.port);
            });
  return merged;
}

ScanSnapshot run_measurement_sharded(const StudyConfig& config, int week, int shards,
                                     std::size_t max_in_flight, int threads) {
  const PopulationPlan plan = build_population_plan(config.seed);
  DeployConfig deploy_config;
  deploy_config.seed = config.seed;
  deploy_config.dummy_hosts = config.dummy_hosts;
  deploy_config.key_threads = config.key_threads;
  deploy_config.key_cache_path = config.key_cache_path;
  Deployer deployer(plan, deploy_config);

  KeyFactory scanner_keys(config.seed, config.key_cache_path);
  ShardedCampaignConfig sharded;
  sharded.campaign.seed = config.seed;
  sharded.campaign.exclusions = deployer.exclusion_list();
  sharded.campaign.grabber.client = make_scanner_identity(config.seed, scanner_keys);
  sharded.campaign.grabber.traverse_address_space = config.traverse_address_space;
  sharded.campaign.max_in_flight = max_in_flight;
  sharded.shards = shards;
  sharded.threads = threads;
  return run_sharded_campaign(deployer, week, sharded);
}

}  // namespace opcua_study
