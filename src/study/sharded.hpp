// Sharded measurement runner: the simulated universe split across worker
// threads.
//
// The concurrent engine removes simulated-time serialization (hosts
// interleave on one event heap); sharding removes *real*-time
// serialization: the population is partitioned into disjoint per-shard
// Networks (discovery-reference closures never straddle a partition, see
// ShardSpec) and each shard runs its own campaign on a worker thread. The
// per-shard snapshots are merged into one, with hosts sorted by (ip, port)
// so the result is deterministic under a fixed seed regardless of shard
// count or thread scheduling. See DESIGN.md §Sharding.
#pragma once

#include "netsim/faults.hpp"
#include "population/deploy.hpp"
#include "scanner/campaign.hpp"
#include "study/options.hpp"
#include "study/study.hpp"

namespace opcua_study {

struct ShardedCampaignConfig {
  /// Per-shard campaign settings (seed, grabber, exclusions, max_in_flight).
  CampaignConfig campaign;
  int shards = 4;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Fault injection installed on every shard Network after deployment.
  /// Default-constructed = disabled (no plan attached, nothing drawn).
  FaultProfile faults;
  /// Seed of the per-endpoint fault streams; 0 = reuse campaign.seed.
  /// Fault streams are keyed by (ip, port), so the injected sequence is
  /// independent of the shard layout and thread count.
  std::uint64_t fault_seed = 0;
};

/// Build the per-shard campaign config from the shared scan options —
/// the canonical construction path; the historical field-by-field setups
/// are thin wrappers over it.
ShardedCampaignConfig make_sharded_config(CampaignConfig campaign, const ScanOptions& options);

/// Attach the configured fault plan to a freshly deployed Network (no-op
/// when the profile is disabled). Shared by every sharded runner.
void install_fault_plan(Network& net, const ShardedCampaignConfig& config);

struct ShardedRunStats {
  /// Simulated end-of-campaign clock per shard; the campaign's simulated
  /// wall-clock is the max (shards run concurrently in simulated time too).
  std::vector<std::uint64_t> shard_simulated_us;
  std::uint64_t max_simulated_us() const;
};

/// Deploy every shard (sequentially — key/cert memoisation is shared),
/// run the per-shard campaigns on a worker pool, and merge the snapshots.
ScanSnapshot run_sharded_campaign(Deployer& deployer, int week,
                                  const ShardedCampaignConfig& config,
                                  ShardedRunStats* stats = nullptr);

/// Same campaign, but each finished shard's host batch is handed to
/// `writer` directly (one begin/end_snapshot pair for the measurement) —
/// the in-memory high-water mark is the in-flight shard snapshots, never
/// the merged measurement. Canonical record order is shard-major: shard
/// batches in shard-index order, hosts sorted by (ip, port) inside each
/// batch; out-of-order completions are parked until their turn, so the
/// written bytes are identical for any worker-thread count. The caller
/// still owns begin-of-file and finish(). Returns the measurement's meta.
SnapshotMeta run_sharded_campaign_streamed(Deployer& deployer, int week,
                                           const ShardedCampaignConfig& config,
                                           SnapshotWriter& writer,
                                           ShardedRunStats* stats = nullptr);

/// Shared setup for the study-level sharded entry points: population
/// plan, deployer and campaign config built once from a StudyConfig and
/// reusable across the eight weekly measurements (key/cert memoisation
/// lives in the deployer). Non-movable: the deployer references the plan.
class ShardedStudy {
 public:
  /// Canonical form: every scan knob comes from the shared ScanOptions.
  ShardedStudy(const StudyConfig& config, const ScanOptions& options);
  /// Legacy form, kept so existing call sites compile unchanged.
  ShardedStudy(const StudyConfig& config, int shards, std::size_t max_in_flight = 256,
               int threads = 0);
  ShardedStudy(const ShardedStudy&) = delete;
  ShardedStudy& operator=(const ShardedStudy&) = delete;

  Deployer& deployer() { return *deployer_; }
  const ShardedCampaignConfig& config() const { return config_; }

 private:
  PopulationPlan plan_;
  std::unique_ptr<Deployer> deployer_;
  ShardedCampaignConfig config_;
};

/// The full weekly measurement of the study, sharded. Equivalent host set
/// to run_measurement(); hosts sorted by (ip, port) instead of sweep order.
ScanSnapshot run_measurement_sharded(const StudyConfig& config, int week,
                                     const ScanOptions& options);
/// Legacy signature, kept so existing call sites compile unchanged.
ScanSnapshot run_measurement_sharded(const StudyConfig& config, int week, int shards,
                                     std::size_t max_in_flight = 256, int threads = 0);

}  // namespace opcua_study
