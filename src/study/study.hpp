// One-call orchestration of the full measurement study — the entry point
// benches and examples share.
#pragma once

#include "population/deploy.hpp"
#include "population/plan.hpp"
#include "scanner/campaign.hpp"
#include "scanner/snapshot_io.hpp"
#include "study/options.hpp"

namespace opcua_study {

struct StudyConfig {
  std::uint64_t seed = 20200209;
  int dummy_hosts = 20000;
  bool traverse_address_space = true;
  /// Keygen workers for deployment (see DeployConfig::key_threads);
  /// snapshots are field-identical for any value.
  int key_threads = 0;
  std::string key_cache_path = KeyFactory::default_cache_path();
  /// > 1: run_full_study_streamed partitions each measurement across
  /// shards and hands finished shard batches to the writer directly
  /// (shard-major host order, bytes identical for any scan_threads).
  /// 1 keeps the legacy sweep-order file, byte-identical to older caches.
  int shards = 1;
  /// Worker threads for the sharded scan; 0 = hardware concurrency.
  int scan_threads = 0;
};

/// The scanner's own identity (self-signed certificate with research
/// contact info, as the paper's ethics setup prescribes).
ClientConfig make_scanner_identity(std::uint64_t seed, KeyFactory& keys);

/// Run one weekly measurement (rebuilds the simulated Internet for that
/// week, sweeps, grabs, follows references). The ScanOptions form applies
/// the shared knobs — fault profile, protocol mix, in-flight window — to
/// the single unsharded campaign (shards/threads are ignored here); the
/// plain form is the all-defaults wrapper.
ScanSnapshot run_measurement(const StudyConfig& config, int week, const ScanOptions& options);
ScanSnapshot run_measurement(const StudyConfig& config, int week);

/// Run all eight measurements of the paper's campaign.
std::vector<ScanSnapshot> run_full_study(const StudyConfig& config);

/// Same campaign, but each weekly measurement is appended to `writer`
/// (chunked v5 snapshot stream) and dropped — the in-memory high-water
/// mark is one measurement, not eight. finish() is called on completion.
///
/// In series terms (src/series/): this produces *member 0* of a campaign
/// series. Add the recorded file to a CampaignSet and grow the rest of
/// the series with extend_series (study/followup.hpp), then feed the set
/// to analyze_series.
///
/// The ScanOptions form is canonical — shards, threads, faults and the
/// protocol mix all come from the shared options (options.shards wins
/// over StudyConfig::shards). The two-argument form wraps it, lifting
/// StudyConfig::shards/scan_threads into an options value.
void run_full_study_streamed(const StudyConfig& config, SnapshotWriter& writer,
                             const ScanOptions& options);
void run_full_study_streamed(const StudyConfig& config, SnapshotWriter& writer);

}  // namespace opcua_study
