#include "study/followup.hpp"

namespace opcua_study {

namespace {

constexpr std::int64_t kTwoYearsDays = 730;

ScanSnapshot followup_shell(const FollowupConfig& config, const SnapshotMeta& base_final) {
  ScanSnapshot snapshot;
  snapshot.measurement_index = 0;
  snapshot.date_days = followup_epoch_days(config, base_final.date_days);
  // The follow-up scan sweeps the same Internet: probe effort carries
  // over; only the population in the records changes.
  snapshot.probes_sent = base_final.probes_sent;
  snapshot.tcp_open_count = base_final.tcp_open_count;
  return snapshot;
}

}  // namespace

std::int64_t followup_epoch_days(const FollowupConfig& config, std::int64_t base_final_days) {
  return config.epoch_days != 0 ? config.epoch_days : base_final_days + kTwoYearsDays;
}

std::vector<ScanSnapshot> run_followup_study(const std::vector<ScanSnapshot>& base,
                                             const FollowupConfig& config) {
  if (base.empty()) {
    throw SnapshotError("follow-up study needs a base campaign with >= 1 measurement");
  }
  const FollowupModel model(config);
  const ScanSnapshot& final_week = base.back();

  SnapshotMeta base_meta;
  base_meta.date_days = final_week.date_days;
  base_meta.probes_sent = final_week.probes_sent;
  base_meta.tcp_open_count = final_week.tcp_open_count;
  ScanSnapshot snapshot = followup_shell(config, base_meta);
  snapshot.hosts.reserve(final_week.hosts.size());
  for (const auto& host : final_week.hosts) {
    if (auto evolved = model.evolve(host)) snapshot.hosts.push_back(std::move(*evolved));
  }
  model.visit_new_deployments(final_week.hosts.size(), [&](HostScanRecord&& host) {
    snapshot.hosts.push_back(std::move(host));
  });
  return {std::move(snapshot)};
}

void run_followup_study_streamed(const SnapshotReader& reader, const FollowupConfig& config,
                                 SnapshotWriter& writer) {
  if (reader.snapshots().empty()) {
    throw SnapshotError("follow-up study needs a base campaign with >= 1 measurement");
  }
  const FollowupModel model(config);
  const std::size_t final_week = reader.snapshots().size() - 1;
  const SnapshotMeta& base_meta = reader.snapshots()[final_week];
  const ScanSnapshot shell = followup_shell(config, base_meta);

  writer.set_campaign(config.campaign_label, shell.date_days);
  writer.begin_snapshot(shell.measurement_index, shell.date_days);
  for (std::size_t c = 0; c < reader.chunks().size(); ++c) {
    if (reader.chunks()[c].snapshot_ordinal != final_week) continue;
    for (const HostScanRecord& host : reader.read_chunk(c)) {
      if (auto evolved = model.evolve(host)) writer.add_host(*evolved);
    }
  }
  model.visit_new_deployments(base_meta.host_count,
                              [&](HostScanRecord&& host) { writer.add_host(host); });
  writer.end_snapshot(shell.probes_sent, shell.tcp_open_count);
  writer.finish();
}

}  // namespace opcua_study
