#include "study/followup.hpp"

#include "series/sketch.hpp"
#include "util/rng.hpp"

namespace opcua_study {

namespace {

constexpr std::int64_t kTwoYearsDays = 730;

/// The per-step model configuration extend_series derives: seed, label,
/// and epoch are pure functions of (config, ordinal), so iterating K
/// times yields decorrelated transitions and a valid campaign chain (see
/// followup.hpp). An explicit config.epoch_days anchors the *first*
/// extension and advances two years per further step — without the
/// advance every generated member would share one epoch and the chain
/// validation would rightly reject the series.
FollowupConfig series_step_config(const FollowupConfig& config, std::size_t ordinal) {
  FollowupConfig step = config;
  step.seed = hash64("series-step:" + std::to_string(config.seed) + ":" +
                     std::to_string(ordinal));
  if (step.campaign_label.empty()) {
    step.campaign_label = "followup-" + std::to_string(ordinal);
  } else if (ordinal > 1) {
    step.campaign_label += "-" + std::to_string(ordinal);
  }
  if (step.epoch_days != 0) {
    step.epoch_days += static_cast<std::int64_t>(ordinal - 1) * kTwoYearsDays;
  }
  return step;
}

}  // namespace

std::int64_t followup_epoch_days(const FollowupConfig& config, std::int64_t base_final_days) {
  return config.epoch_days != 0 ? config.epoch_days : base_final_days + kTwoYearsDays;
}

SnapshotMeta followup_shell(const FollowupConfig& config, const SnapshotMeta& base_final) {
  SnapshotMeta shell;
  shell.measurement_index = 0;
  shell.date_days = followup_epoch_days(config, base_final.date_days);
  // The follow-up scan sweeps the same Internet: probe effort carries
  // over; only the population in the records changes.
  shell.probes_sent = base_final.probes_sent;
  shell.tcp_open_count = base_final.tcp_open_count;
  shell.campaign_label = config.campaign_label;
  shell.campaign_epoch_days = shell.date_days;
  return shell;
}

void evolve_final_measurement(const RecordSource& base, const FollowupConfig& config,
                              const std::function<void(HostScanRecord&&)>& emit) {
  if (base.week_count() == 0) {
    throw SnapshotError("follow-up study needs a base campaign with >= 1 measurement");
  }
  const FollowupModel model(config);
  const std::size_t final_week = base.week_count() - 1;
  for (std::size_t c = 0; c < base.chunk_count(); ++c) {
    if (base.chunk_week(c) != final_week) continue;
    base.visit_chunk(c, [&](const HostScanRecord& host) {
      if (auto evolved = model.evolve(host)) emit(std::move(*evolved));
    });
  }
  model.visit_new_deployments(base.week_meta(final_week).host_count, emit);
}

std::vector<ScanSnapshot> run_followup_study(const std::vector<ScanSnapshot>& base,
                                             const FollowupConfig& config) {
  if (base.empty()) {
    throw SnapshotError("follow-up study needs a base campaign with >= 1 measurement");
  }
  const SnapshotVectorSource source(base, SnapshotWriter::kDefaultChunkRecords);
  const SnapshotMeta shell = followup_shell(config, source.week_meta(base.size() - 1));
  ScanSnapshot snapshot;
  snapshot.measurement_index = shell.measurement_index;
  snapshot.date_days = shell.date_days;
  snapshot.probes_sent = shell.probes_sent;
  snapshot.tcp_open_count = shell.tcp_open_count;
  snapshot.hosts.reserve(base.back().hosts.size());
  evolve_final_measurement(source, config,
                           [&](HostScanRecord&& host) { snapshot.hosts.push_back(std::move(host)); });
  return {std::move(snapshot)};
}

void run_followup_study_streamed(const SnapshotReader& reader, const FollowupConfig& config,
                                 SnapshotWriter& writer) {
  if (reader.snapshots().empty()) {
    throw SnapshotError("follow-up study needs a base campaign with >= 1 measurement");
  }
  const ReaderRecordSource source(reader);
  const SnapshotMeta shell = followup_shell(config, reader.snapshots().back());
  writer.set_campaign(config.campaign_label, shell.date_days);
  writer.begin_snapshot(shell.measurement_index, shell.date_days);
  evolve_final_measurement(source, config,
                           [&](HostScanRecord&& host) { writer.add_host(host); });
  writer.end_snapshot(shell.probes_sent, shell.tcp_open_count);
  writer.finish();
}

SnapshotMeta extend_series(CampaignSet& set, const FollowupConfig& config) {
  if (set.empty()) {
    throw SnapshotError("extend_series needs a series with >= 1 member");
  }
  const CampaignSet::OpenMember last = set.open(set.size() - 1);
  const FollowupConfig step = series_step_config(config, set.size());
  SnapshotMeta shell = followup_shell(step, last.final_meta());
  ScanSnapshot snapshot;
  snapshot.measurement_index = shell.measurement_index;
  snapshot.date_days = shell.date_days;
  snapshot.probes_sent = shell.probes_sent;
  snapshot.tcp_open_count = shell.tcp_open_count;
  snapshot.hosts.reserve(last.final_meta().host_count);
  evolve_final_measurement(last.source(), step,
                           [&](HostScanRecord&& host) { snapshot.hosts.push_back(std::move(host)); });
  shell.host_count = snapshot.hosts.size();
  std::vector<ScanSnapshot> member;
  member.push_back(std::move(snapshot));
  set.add_snapshots(std::move(member), shell.campaign_label, shell.campaign_epoch_days);
  return shell;
}

SnapshotMeta extend_series(CampaignSet& set, const FollowupConfig& config,
                           const std::string& path, std::uint64_t file_seed) {
  if (set.empty()) {
    throw SnapshotError("extend_series needs a series with >= 1 member");
  }
  std::uint64_t hosts = 0;
  SnapshotMeta shell;
  {
    const CampaignSet::OpenMember last = set.open(set.size() - 1);
    const FollowupConfig step = series_step_config(config, set.size());
    shell = followup_shell(step, last.final_meta());
    SnapshotWriter writer(path, file_seed);
    writer.set_campaign(shell.campaign_label, shell.campaign_epoch_days);
    writer.begin_snapshot(shell.measurement_index, shell.date_days);
    evolve_final_measurement(last.source(), step, [&](HostScanRecord&& host) {
      writer.add_host(host);
      ++hosts;
    });
    writer.end_snapshot(shell.probes_sent, shell.tcp_open_count);
    writer.finish();
  }
  shell.host_count = hosts;
  // Cut the new member's posture sketch now, while the file is hot: one
  // posture pass here is what lets every later series append load the
  // sidecar instead of re-walking the member.
  ThreadPool inline_pool(1);
  ensure_posture_sketch(path, file_seed, inline_pool);
  set.add_file(path, file_seed);
  return shell;
}

}  // namespace opcua_study
