#include "study/study.hpp"

#include <memory>

#include "crypto/x509.hpp"
#include "study/sharded.hpp"

namespace opcua_study {

ClientConfig make_scanner_identity(std::uint64_t seed, KeyFactory& keys) {
  ClientConfig config;
  config.application_uri = "urn:example:research:opcua-scanner";
  config.application_name =
      "Internet-wide OPC UA security measurement - optout: https://scan.example.org";
  const RsaKeyPair pair = keys.get("scanner", 2048);
  CertificateSpec spec;
  spec.subject = {"opcua-scanner", "Example Research Group", "DE"};
  spec.signature_hash = HashAlgorithm::sha256;
  spec.serial = Bignum{seed | 1};
  spec.not_before_days = days_from_civil({2020, 1, 1});
  spec.not_after_days = days_from_civil({2021, 1, 1});
  spec.application_uri = config.application_uri;
  config.certificate_der = x509_create(spec, pair.pub, pair.priv);
  config.private_key = pair.priv;
  return config;
}

ScanSnapshot run_measurement(const StudyConfig& config, int week, const ScanOptions& options) {
  const PopulationPlan plan = build_population_plan(config.seed);
  DeployConfig deploy_config;
  deploy_config.seed = config.seed;
  deploy_config.dummy_hosts = config.dummy_hosts;
  deploy_config.key_threads = config.key_threads;
  deploy_config.key_cache_path = config.key_cache_path;
  Deployer deployer(plan, deploy_config);

  Network net;
  deployer.deploy_week(net, week);
  if (options.faults.enabled()) {
    const std::uint64_t fault_seed = options.fault_seed != 0 ? options.fault_seed : config.seed;
    net.set_fault_plan(std::make_unique<FaultPlan>(fault_seed, options.faults));
  }

  KeyFactory scanner_keys(config.seed, config.key_cache_path);
  CampaignConfig campaign_config;
  campaign_config.seed = config.seed;
  campaign_config.exclusions = deployer.exclusion_list();
  campaign_config.grabber.client = make_scanner_identity(config.seed, scanner_keys);
  campaign_config.grabber.traverse_address_space = config.traverse_address_space;
  campaign_config.max_in_flight = options.max_in_flight;
  campaign_config.protocols = options.protocols;
  Campaign campaign(campaign_config, net);
  return campaign.run(week);
}

ScanSnapshot run_measurement(const StudyConfig& config, int week) {
  return run_measurement(config, week, ScanOptions{});
}

std::vector<ScanSnapshot> run_full_study(const StudyConfig& config) {
  std::vector<ScanSnapshot> snapshots;
  snapshots.reserve(kNumMeasurements);
  for (int week = 0; week < kNumMeasurements; ++week) {
    snapshots.push_back(run_measurement(config, week));
  }
  return snapshots;
}

void run_full_study_streamed(const StudyConfig& config, SnapshotWriter& writer,
                             const ScanOptions& options) {
  if (options.shards > 1) {
    // Sharded streaming: finished shard batches flow into the writer while
    // other shards are still scanning — the high-water mark is the
    // in-flight shard snapshots, never a full merged measurement.
    ShardedStudy study(config, options);
    for (int week = 0; week < kNumMeasurements; ++week) {
      run_sharded_campaign_streamed(study.deployer(), week, study.config(), writer);
    }
    writer.finish();
    return;
  }
  for (int week = 0; week < kNumMeasurements; ++week) {
    const ScanSnapshot snapshot = run_measurement(config, week, options);
    writer.add_snapshot(snapshot);
    // The snapshot goes out of scope here: at no point does the campaign
    // hold more than one measurement in memory.
  }
  writer.finish();
}

void run_full_study_streamed(const StudyConfig& config, SnapshotWriter& writer) {
  ScanOptions options;
  options.shards = config.shards;
  options.threads = config.scan_threads;
  run_full_study_streamed(config, writer, options);
}

}  // namespace opcua_study
