#include "study/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/date.hpp"

namespace opcua_study {

namespace {

void sort_by_endpoint(std::vector<HostScanRecord>& hosts) {
  std::sort(hosts.begin(), hosts.end(), [](const HostScanRecord& a, const HostScanRecord& b) {
    return std::make_pair(a.ip, a.port) < std::make_pair(b.ip, b.port);
  });
}

std::uint64_t effective_snapshot_seed(const CheckpointConfig& config) {
  return config.snapshot_seed != 0 ? config.snapshot_seed : config.campaign.campaign.seed;
}

std::uint64_t effective_fault_seed(const CheckpointConfig& config) {
  return config.campaign.fault_seed != 0 ? config.campaign.fault_seed
                                         : config.campaign.campaign.seed;
}

/// The identity header: every line a resumed run must reproduce verbatim.
/// Doubles are printed at max round-trip precision, so identity comparison
/// is plain string equality — no float parsing anywhere.
std::vector<std::string> identity_header(const CheckpointConfig& config) {
  const FaultProfile& f = config.campaign.faults;
  std::ostringstream faults;
  faults << std::setprecision(17) << "faults " << f.connect_drop << ' ' << f.listener_flap << ' '
         << f.reset << ' ' << f.reset_after_min << ' ' << f.reset_after_max << ' ' << f.stall
         << ' ' << f.stall_us << ' ' << f.truncate << ' ' << f.connect_timeout_us;
  std::vector<std::string> lines;
  lines.push_back("opcua-checkpoint v1");
  lines.push_back("seed " + std::to_string(effective_snapshot_seed(config)));
  lines.push_back("first_week " + std::to_string(config.first_week));
  lines.push_back("weeks " + std::to_string(config.weeks));
  lines.push_back("shards " + std::to_string(std::max(1, config.campaign.shards)));
  lines.push_back("chunk_records " + std::to_string(config.chunk_records));
  lines.push_back("campaign_seed " + std::to_string(config.campaign.campaign.seed));
  lines.push_back("fault_seed " + std::to_string(effective_fault_seed(config)));
  lines.push_back(std::string("oracle ") + (config.campaign.campaign.oracle_sweep ? "1" : "0"));
  lines.push_back(faults.str());
  // Only a non-default protocol mix stamps an identity line, so manifests
  // written before the registry landed keep validating as-is.
  if (!config.campaign.campaign.protocols.empty()) {
    std::string protocols = "protocols";
    for (const ProtocolTarget& target : config.campaign.campaign.protocols) {
      protocols += ' ' + protocol_name(target.protocol) + ':' + std::to_string(target.port);
    }
    lines.push_back(std::move(protocols));
  }
  return lines;
}

/// Parse the manifest at `path`. Returns the sealed unit set; throws on an
/// identity mismatch (resuming with a different configuration would mix
/// incompatible records into one dataset). A missing manifest is a fresh
/// start.
std::set<std::pair<int, int>> load_manifest(const std::string& path,
                                            const std::vector<std::string>& header) {
  std::set<std::pair<int, int>> done;
  std::ifstream in(path);
  if (!in) return done;
  std::string line;
  for (const std::string& expected : header) {
    if (!std::getline(in, line) || line != expected) {
      throw SnapshotError("checkpoint manifest " + path +
                          " was written by an incompatible configuration (expected '" + expected +
                          "', found '" + line + "')");
    }
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    int week = 0, shard = 0;
    if (!(ls >> tag >> week >> shard) || tag != "done") {
      throw SnapshotError("checkpoint manifest " + path + ": malformed line '" + line + "'");
    }
    done.emplace(week, shard);
  }
  return done;
}

/// Atomically replace the manifest: a kill during the write leaves either
/// the previous manifest or the new one, never a torn file.
void save_manifest(const std::string& path, const std::vector<std::string>& header,
                   const std::set<std::pair<int, int>>& done) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw SnapshotError("cannot write checkpoint manifest: " + tmp);
    for (const std::string& line : header) out << line << '\n';
    for (const auto& [week, shard] : done) out << "done " << week << ' ' << shard << '\n';
    out.close();
    if (!out) throw SnapshotError("write failure on checkpoint manifest: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot move checkpoint manifest into place: " + tmp + " -> " + path);
  }
}

}  // namespace

std::string checkpoint_manifest_path(const std::string& dir) { return dir + "/manifest.txt"; }

std::string checkpoint_segment_path(const std::string& dir, int week, int shard) {
  return dir + "/seg-w" + std::to_string(week) + "-s" + std::to_string(shard) + ".bin";
}

bool run_checkpointed_study(Deployer& deployer, const CheckpointConfig& config,
                            const std::string& out_path) {
  const int shards = std::max(1, config.campaign.shards);
  const std::uint64_t seed = effective_snapshot_seed(config);
  std::filesystem::create_directories(config.dir);
  const std::string manifest = checkpoint_manifest_path(config.dir);
  const std::vector<std::string> header = identity_header(config);
  std::set<std::pair<int, int>> done = load_manifest(manifest, header);

  // Scan pending units one week at a time: deployment is sequential (the
  // Deployer memoises keys across shards and is not thread-safe), scanning
  // runs on a worker pool. Each worker seals its unit's segment file first
  // (the SnapshotWriter rename makes that atomic) and only then marks it
  // done in the manifest — a crash between the two merely rescans one unit.
  std::mutex manifest_mu;
  int allowed = config.stop_after_units < 0 ? std::numeric_limits<int>::max()
                                            : config.stop_after_units;
  for (int w = 0; w < config.weeks && allowed > 0; ++w) {
    const int week = config.first_week + w;
    std::vector<int> pending;
    for (int s = 0; s < shards; ++s) {
      if (!done.contains({week, s})) pending.push_back(s);
    }
    if (pending.empty()) continue;

    std::vector<std::unique_ptr<Network>> networks(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      networks[i] = std::make_unique<Network>();
      deployer.deploy_week(*networks[i], week, ShardSpec{pending[i], shards});
      install_fault_plan(*networks[i], config.campaign);
    }

    // Claim indices in order, so a unit budget of N seals exactly the
    // first N pending units of the week regardless of worker timing.
    const int claimable = std::min<int>(allowed, static_cast<int>(pending.size()));
    std::atomic<int> next{0};
    // A unit that throws (corrupt segment path, full disk, a netsim bug)
    // must not std::terminate from a raw worker thread: the first failure
    // stops further claims, already-sealed units stay sealed (the manifest
    // only advances on success), the flight recorder is dumped next to the
    // manifest, and the exception resurfaces on the caller.
    std::atomic<bool> unit_failed{false};
    std::exception_ptr first_failure;
    std::mutex failure_mu;
    auto worker = [&] {
      for (int i = next.fetch_add(1); i < claimable; i = next.fetch_add(1)) {
        if (unit_failed.load(std::memory_order_relaxed)) return;
        const int shard = pending[static_cast<std::size_t>(i)];
        const obs::TraceScope scope(week, shard);
        try {
          Campaign campaign(config.campaign.campaign, *networks[static_cast<std::size_t>(i)]);
          ScanSnapshot snapshot = campaign.run(week);
          sort_by_endpoint(snapshot.hosts);
          {
            SnapshotWriter seg(checkpoint_segment_path(config.dir, week, shard), seed,
                               config.chunk_records);
            seg.begin_snapshot(week, measurement_days(week));
            for (const auto& host : snapshot.hosts) seg.add_host(host);
            seg.end_snapshot(snapshot.probes_sent, snapshot.tcp_open_count);
            seg.finish();
          }
          obs::trace(obs::TraceEvent::unit_sealed, 0, 0, 0, snapshot.hosts.size(),
                     snapshot.probes_sent);
          std::lock_guard<std::mutex> lock(manifest_mu);
          done.emplace(week, shard);
          save_manifest(manifest, header, done);
        } catch (...) {
          obs::trace(obs::TraceEvent::unit_failed, 0, 0, 0,
                     static_cast<std::uint64_t>(week), static_cast<std::uint64_t>(shard));
          std::lock_guard<std::mutex> lock(failure_mu);
          if (first_failure == nullptr) first_failure = std::current_exception();
          unit_failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    const int thread_count = std::min(
        claimable,
        config.campaign.threads > 0 ? config.campaign.threads : static_cast<int>(hardware));
    if (thread_count <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(thread_count));
      for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
      for (auto& thread : pool) thread.join();
    }
    if (first_failure != nullptr) {
      if (obs::trace_enabled()) {
        const std::string crash_dump = config.dir + "/flight_recorder.crash.jsonl";
        if (obs::dump_trace(crash_dump)) {
          obs::logf(obs::LogLevel::error, "checkpointed unit failed; flight recorder at %s",
                    crash_dump.c_str());
        }
      }
      std::rethrow_exception(first_failure);
    }
    allowed -= claimable;
  }

  for (int w = 0; w < config.weeks; ++w) {
    for (int s = 0; s < shards; ++s) {
      if (!done.contains({config.first_week + w, s})) return false;  // resume later
    }
  }

  // Final assembly: re-stream every sealed segment in canonical
  // (week, shard) order through one writer. Record order, chunking and
  // dictionary id assignment all match an uninterrupted
  // run_sharded_campaign_streamed study, so the output is byte-identical.
  SnapshotWriter writer(out_path, seed, config.chunk_records);
  if (!config.campaign_label.empty() || config.campaign_epoch_days != 0) {
    writer.set_campaign(config.campaign_label, config.campaign_epoch_days);
  }
  for (int w = 0; w < config.weeks; ++w) {
    const int week = config.first_week + w;
    writer.begin_snapshot(week, measurement_days(week));
    std::uint64_t probes_sent = 0, tcp_open_count = 0, first_shard_probes = 0;
    for (int s = 0; s < shards; ++s) {
      const SnapshotReader seg(checkpoint_segment_path(config.dir, week, s), seed);
      if (seg.snapshots().size() != 1) {
        throw SnapshotError("checkpoint segment holds " +
                            std::to_string(seg.snapshots().size()) +
                            " measurements, expected 1: " +
                            checkpoint_segment_path(config.dir, week, s));
      }
      probes_sent += seg.snapshots()[0].probes_sent;
      tcp_open_count += seg.snapshots()[0].tcp_open_count;
      if (s == 0) first_shard_probes = seg.snapshots()[0].probes_sent;
      seg.for_each_host([&](std::size_t, const HostScanRecord& host) { writer.add_host(host); });
    }
    if (!config.campaign.campaign.oracle_sweep) {
      // LFSR mode: every shard walks the identical universe; one shard's
      // walk is the campaign's probe count (mirrors the sharded runners).
      probes_sent = first_shard_probes;
    }
    writer.end_snapshot(probes_sent, tcp_open_count);
  }
  writer.finish();
  return true;
}

}  // namespace opcua_study
