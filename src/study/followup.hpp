// Follow-up-study orchestration: replay the evolution model over a
// recorded base campaign to produce later measurements — one follow-up
// (the "two years later" snapshot the diff subsystem compares against),
// or, iterated through extend_series(), a whole N-campaign series.
//
// Every entry point evolves the *final* measurement of its base campaign
// (the paper's headline snapshot) host by host in record order —
// survivors first, then the new deployments — through one shared
// RecordSource-driven core, so the streamed, in-memory, and series paths
// all produce identical measurements. The streamed variants hold one
// decoded chunk plus the certificate mint fleet; the base campaign is
// never materialized.
#pragma once

#include "population/followup.hpp"
#include "scanner/snapshot_io.hpp"
#include "series/series.hpp"

namespace opcua_study {

/// Evolve `base` (full campaign, in memory) into a one-measurement
/// follow-up campaign. Throws SnapshotError when `base` is empty.
std::vector<ScanSnapshot> run_followup_study(const std::vector<ScanSnapshot>& base,
                                             const FollowupConfig& config);

/// Same campaign streamed: the base's final measurement is read chunk by
/// chunk from `reader` and the evolved records appended to `writer`
/// (campaign label/epoch stamped, finish() called on completion).
void run_followup_study_streamed(const SnapshotReader& reader, const FollowupConfig& config,
                                 SnapshotWriter& writer);

/// The effective epoch of a follow-up campaign: the configured value, or
/// the base campaign's final measurement plus two years when unset.
std::int64_t followup_epoch_days(const FollowupConfig& config, std::int64_t base_final_days);

/// The follow-up measurement's identity (date/epoch, carried-over probe
/// effort, campaign label) derived from the base campaign's final
/// measurement before any record is evolved. host_count is left 0 — it is
/// only known once the evolution ran.
SnapshotMeta followup_shell(const FollowupConfig& config, const SnapshotMeta& base_final);

/// The shared evolution core: stream the final measurement of `base`
/// through the FollowupModel and call `emit` for every record of the
/// follow-up measurement (survivors in record order, then the new
/// deployments). Throws SnapshotError when `base` holds no measurement.
void evolve_final_measurement(const RecordSource& base, const FollowupConfig& config,
                              const std::function<void(HostScanRecord&&)>& emit);

/// Append one generated follow-up member to a campaign series: the final
/// measurement of the current last member is evolved and added as a new
/// member (in-memory here; file-backed in the overload below). Returns
/// the new member's final-measurement metadata (host_count filled in).
///
/// Iterating K times grows a deterministic N-campaign series:
///  - the model seed is folded with the new member's ordinal
///    (hash64("series-step:<seed>:<ordinal>")), so a host surviving
///    several steps draws fresh transitions each time instead of
///    replaying the same fate;
///  - an empty config.campaign_label derives "followup-<ordinal>", and a
///    non-empty one is suffixed "-<ordinal>" from the second extension
///    on, so default-config iteration yields distinct chain labels;
///  - an unset epoch derives final-measurement date + two years per
///    step; an explicit config.epoch_days anchors the first extension
///    and likewise advances two years per further step, so iteration
///    always yields a strictly increasing (chain-valid) epoch sequence.
/// Both overloads produce identical records and identities for the same
/// set state, so file-backed and in-memory series are interchangeable.
SnapshotMeta extend_series(CampaignSet& set, const FollowupConfig& config);

/// File-backed variant: the evolved member is streamed into a snapshot
/// file at `path` under `file_seed` and appended to the set as a file
/// member. A posture sketch sidecar (`<path>.sketch`) is written
/// alongside — the one posture pass the incremental-series contract
/// allows for a new member happens here, so later appends to a resident
/// series load the sidecar instead of re-walking the file.
SnapshotMeta extend_series(CampaignSet& set, const FollowupConfig& config,
                           const std::string& path, std::uint64_t file_seed);

}  // namespace opcua_study
