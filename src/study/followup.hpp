// Follow-up-study orchestration: replay the evolution model over a
// recorded base campaign to produce the "two years later" measurement the
// diff subsystem (src/diff/) compares against.
//
// Both entry points evolve the *final* measurement of the base campaign
// (the paper's headline snapshot) host by host in record order — survivors
// first, then the new deployments — so the streamed and in-memory paths
// produce the identical measurement. The streamed variant holds one
// decoded chunk plus the certificate mint fleet; the base campaign is
// never materialized.
#pragma once

#include "population/followup.hpp"
#include "scanner/snapshot_io.hpp"

namespace opcua_study {

/// Evolve `base` (full campaign, in memory) into a one-measurement
/// follow-up campaign. Throws SnapshotError when `base` is empty.
std::vector<ScanSnapshot> run_followup_study(const std::vector<ScanSnapshot>& base,
                                             const FollowupConfig& config);

/// Same campaign streamed: the base's final measurement is read chunk by
/// chunk from `reader` and the evolved records appended to `writer`
/// (campaign label/epoch stamped, finish() called on completion).
void run_followup_study_streamed(const SnapshotReader& reader, const FollowupConfig& config,
                                 SnapshotWriter& writer);

/// The effective epoch of a follow-up campaign: the configured value, or
/// the base campaign's final measurement plus two years when unset.
std::int64_t followup_epoch_days(const FollowupConfig& config, std::int64_t base_final_days);

}  // namespace opcua_study
