// The one scan-option set every campaign entry point shares.
//
// Before this struct, the streamed study, the sharded runner and the
// checkpointed runner each grew their own copies of the same knobs
// (shards, worker threads, fault profile, in-flight window) with subtly
// different spellings. ScanOptions is the single source: the canonical
// entry points consume it directly and the historical signatures survive
// as thin wrappers that populate one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netsim/faults.hpp"
#include "scanner/protocol.hpp"

namespace opcua_study {

struct ScanOptions {
  /// Population partitions scanned independently. 1 = unsharded (legacy
  /// sweep-order records); > 1 = shard-major, (ip, port)-sorted batches.
  int shards = 1;
  /// Worker threads for the sharded scan; 0 = hardware concurrency. The
  /// records are identical for any value.
  int threads = 0;
  /// Hosts concurrently in flight per campaign (CampaignConfig doc).
  std::size_t max_in_flight = 256;
  /// Fault injection installed on every deployed Network after deployment.
  /// Default-constructed = disabled (no plan attached, nothing drawn).
  FaultProfile faults;
  /// Seed of the per-endpoint fault streams; 0 = reuse the campaign seed.
  /// Streams are keyed by (ip, port), so the injected sequence is
  /// independent of the shard layout and thread count.
  std::uint64_t fault_seed = 0;
  /// Protocol mix of the campaign (CampaignConfig::protocols). Empty =
  /// the legacy single-profile OPC UA sweep, byte-identical to the
  /// pre-registry engine.
  std::vector<ProtocolTarget> protocols;
};

}  // namespace opcua_study
