// Crash-safe, resumable sharded campaigns.
//
// A long campaign that dies mid-measurement (OOM kill, power loss,
// pre-empted spot instance) should not have to rescan weeks of finished
// work. This runner splits the study into (week, shard) units, writes each
// finished unit to its own sealed segment snapshot inside a checkpoint
// directory, and records completed units in a small text manifest that is
// atomically rewritten after every unit. Killing the process at any point
// loses at most the units in flight: a restarted run validates the
// manifest's identity header, skips everything already sealed, scans only
// the pending units, and finally re-streams all segments in canonical
// (week, shard) order through one SnapshotWriter.
//
// Because a unit's records are a pure function of (seed, week, shard) and
// the final assembly replays them in exactly the order
// run_sharded_campaign_streamed writes them (shard-major, hosts sorted by
// (ip, port) within a shard, one begin/end_snapshot per week), the final
// file is byte-identical to an uninterrupted streamed run — the
// kill-and-resume test pins this.
//
// Manifest format (`manifest.txt`, atomically replaced via .tmp + rename):
//   opcua-checkpoint v1
//   seed <snapshot seed>         first_week <w>   weeks <n>
//   shards <n>                   chunk_records <n>
//   campaign_seed <s>            fault_seed <s>   oracle <0|1>
//   faults <connect_drop> <listener_flap> <reset> <reset_after_min>
//          <reset_after_max> <stall> <stall_us> <truncate> <connect_timeout_us>
//   done <week> <shard>          (one line per sealed unit)
// A resume with any differing identity line refuses to run (SnapshotError):
// mixing seeds or fault profiles across runs would corrupt the dataset.
#pragma once

#include <string>

#include "study/sharded.hpp"

namespace opcua_study {

struct CheckpointConfig {
  /// Per-shard campaign settings plus shard/thread counts and the fault
  /// profile, exactly as run_sharded_campaign_streamed consumes them.
  ShardedCampaignConfig campaign;
  /// Measurements [first_week, first_week + weeks).
  int first_week = 0;
  int weeks = 1;
  /// Directory holding the manifest and per-unit segment files; created
  /// if missing.
  std::string dir;
  /// Seed stamped into segment and final snapshot files; 0 = campaign seed.
  std::uint64_t snapshot_seed = 0;
  std::uint32_t chunk_records = SnapshotWriter::kDefaultChunkRecords;
  /// Optional campaign identity stamped on the *final* file (segments
  /// never carry one).
  std::string campaign_label;
  std::int64_t campaign_epoch_days = 0;
  /// Test hook simulating a crash: complete at most this many units in
  /// this invocation, then return without assembling. Negative = no limit.
  int stop_after_units = -1;
};

std::string checkpoint_manifest_path(const std::string& dir);
std::string checkpoint_segment_path(const std::string& dir, int week, int shard);

/// Run (or resume) the checkpointed campaign. Returns true when every unit
/// is sealed and the final snapshot was assembled at `out_path`; false when
/// stop_after_units left pending units (call again to resume). Throws
/// SnapshotError when an existing manifest was produced by an incompatible
/// configuration.
bool run_checkpointed_study(Deployer& deployer, const CheckpointConfig& config,
                            const std::string& out_path);

}  // namespace opcua_study
