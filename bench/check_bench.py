#!/usr/bin/env python3
"""Bench-regression guard: compare an emitted BENCH_*.json against a
checked-in baseline.

Baselines (bench/baselines/*.json) declare per-metric bounds:

    {
      "metrics": {
        "keygen_2048.speedup":  {"min": 2.5},
        "batch_gcd.scaling_exponent": {"max": 1.7},
        "old_new_results_identical": {"equals": true},
        "largest_thread_scaling": {"min": 1.6,
                                   "when": {"path": "cores", "min": 4}}
      }
    }

Dotted paths index into the result JSON; numeric components index arrays
("sizes.0.hosts"). `min`/`max` bounds are softened by --slack (CI machines
are noisy; a real regression blows through the slack too); `equals` is
exact. A `when` clause skips the check unless the referenced result value
meets its own min (e.g. thread-scaling checks only apply on multi-core
runners). Exits 1 listing every violated bound.

Usage:
    check_bench.py --baseline bench/baselines/crypto.json --result BENCH_crypto.json [--slack 0.15]
"""

import argparse
import json
import sys


def lookup(data, path):
    node = data
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict):
            node = node[part]
        else:
            raise KeyError(path)
    return node


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--result", required=True)
    parser.add_argument("--slack", type=float, default=0.15,
                        help="fractional tolerance applied to min/max bounds (default 0.15)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.result) as f:
        result = json.load(f)

    failures = []
    checked = skipped = 0
    for path, bounds in baseline["metrics"].items():
        when = bounds.get("when")
        if when is not None:
            try:
                gate = lookup(result, when["path"])
            except (KeyError, IndexError, ValueError):
                failures.append(f"{path}: gate path {when['path']!r} missing from result")
                continue
            if not (isinstance(gate, (int, float)) and gate >= when["min"]):
                skipped += 1
                continue
        try:
            value = lookup(result, path)
        except (KeyError, IndexError, ValueError):
            failures.append(f"{path}: missing from result")
            continue
        checked += 1
        if "equals" in bounds and value != bounds["equals"]:
            failures.append(f"{path}: expected {bounds['equals']!r}, got {value!r}")
        if "min" in bounds:
            floor = bounds["min"] * (1.0 - args.slack)
            if not (isinstance(value, (int, float)) and value >= floor):
                failures.append(
                    f"{path}: {value!r} below baseline min {bounds['min']}"
                    f" (floor {floor:.4g} after {args.slack:.0%} slack)")
        if "max" in bounds:
            ceil = bounds["max"] * (1.0 + args.slack)
            if not (isinstance(value, (int, float)) and value <= ceil):
                failures.append(
                    f"{path}: {value!r} above baseline max {bounds['max']}"
                    f" (ceiling {ceil:.4g} after {args.slack:.0%} slack)")

    label = f"{args.result} vs {args.baseline}"
    if failures:
        print(f"[check_bench] REGRESSION {label}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"[check_bench] ok {label}: {checked} metric(s) within bounds, {skipped} gated off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
