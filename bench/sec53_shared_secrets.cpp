// §5.3 "Secrets Not Meant to be Shared": batch-GCD shared-prime scan over
// all collected RSA moduli (the paper found no weak-randomness evidence),
// plus a positive control with injected shared primes to show the scanner
// would have caught them.
#include <cstdio>

#include "bench_common.hpp"
#include "crypto/batch_gcd.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  AnalysisOptions options;
  options.threads = 0;
  options.shared_primes = true;
  const StudyAnalysis analysis = bench::run_analysis(options);
  const SharedPrimeStats& stats = analysis.shared_primes;
  const double elapsed = analysis.shared_prime_seconds;

  std::puts("Section 5.3: shared-prime scan over the collected certificate corpus\n");
  std::printf("distinct RSA moduli checked : %zu\n", stats.distinct_moduli);
  std::printf("moduli sharing a prime      : %zu\n", stats.moduli_with_shared_prime);
  std::printf("batch-GCD wall time         : %.2f s (product+remainder tree)\n\n", elapsed);

  // Positive control: inject a weak-randomness population and re-run.
  Rng rng(424242);
  std::vector<Bignum> weak;
  const Bignum shared_prime = Bignum::generate_prime(rng, 256, 8);
  for (int i = 0; i < 32; ++i) {
    const Bignum q = Bignum::generate_prime(rng, 256, 8);
    weak.push_back(i % 4 == 0 ? shared_prime * q
                              : Bignum::generate_prime(rng, 256, 8) * q);
  }
  const auto control = batch_gcd(weak);
  std::printf("positive control: injected 8/32 moduli sharing one prime -> detected %zu\n\n",
              control.affected());

  std::vector<ComparisonRow> rows = {
      compare_num("moduli with shared primes (paper: none found)", 0,
                  static_cast<double>(stats.moduli_with_shared_prime), 0),
      compare_num("positive control detections", 8, static_cast<double>(control.affected()), 0),
  };
  std::fputs(render_comparison("Section 5.3 vs paper", rows).c_str(), stdout);
  return 0;
}
