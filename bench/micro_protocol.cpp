// google-benchmark microbenchmarks: crypto primitives, OPC UA encoding,
// secure-channel operations, sweep rate, batch GCD.
#include <benchmark/benchmark.h>

#include "crypto/aes.hpp"
#include "crypto/batch_gcd.hpp"
#include "crypto/x509.hpp"
#include "opcua/secureconv.hpp"
#include "scanner/lfsr.hpp"
#include "util/rng.hpp"

namespace opcua_study {
namespace {

const RsaKeyPair& bench_key() {
  static const RsaKeyPair kp = [] {
    Rng rng(31337);
    return rsa_generate(rng, 2048, 8);
  }();
  return kp;
}

const Bytes& bench_cert() {
  static const Bytes der = [] {
    CertificateSpec spec;
    spec.subject = {"bench", "Bench Org", "DE"};
    spec.application_uri = "urn:bench";
    spec.not_after_days = 30000;
    return x509_create(spec, bench_key().pub, bench_key().priv);
  }();
  return der;
}

void BM_Sha256_1KiB(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(hash(HashAlgorithm::sha256, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Md5_1KiB(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(hash(HashAlgorithm::md5, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Md5_1KiB);

void BM_AesCbc_1KiB(benchmark::State& state) {
  Rng rng(3);
  const Bytes key = rng.bytes(32), iv = rng.bytes(16), data = rng.bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(aes_cbc_encrypt(key, iv, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesCbc_1KiB);

void BM_RsaSign2048(benchmark::State& state) {
  const Bytes msg = to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_pkcs1v15_sign(bench_key().priv, HashAlgorithm::sha256, msg));
  }
}
BENCHMARK(BM_RsaSign2048);

void BM_RsaVerify2048(benchmark::State& state) {
  const Bytes msg = to_bytes("benchmark message");
  const Bytes sig = rsa_pkcs1v15_sign(bench_key().priv, HashAlgorithm::sha256, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_pkcs1v15_verify(bench_key().pub, HashAlgorithm::sha256, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify2048);

void BM_X509Parse(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(x509_parse(bench_cert()));
}
BENCHMARK(BM_X509Parse);

void BM_OpnBuildParse_None(benchmark::State& state) {
  Rng rng(4);
  const Bytes body = rng.bytes(200);
  OpnSecurity sec;
  for (auto _ : state) {
    const Bytes wire = build_opn(1, sec, SequenceHeader{1, 1}, body, rng);
    benchmark::DoNotOptimize(parse_opn(wire, nullptr));
  }
}
BENCHMARK(BM_OpnBuildParse_None);

void BM_MsgSignEncrypt_Basic256Sha256(benchmark::State& state) {
  Rng rng(5);
  const DerivedKeys keys =
      derive_keys(SecurityPolicy::Basic256Sha256, rng.bytes(32), rng.bytes(32));
  const Bytes body = rng.bytes(512);
  for (auto _ : state) {
    const Bytes wire =
        build_msg("MSG", 1, 1, SequenceHeader{1, 1}, body, SecurityPolicy::Basic256Sha256,
                  MessageSecurityMode::SignAndEncrypt, keys);
    benchmark::DoNotOptimize(
        parse_msg(wire, SecurityPolicy::Basic256Sha256, MessageSecurityMode::SignAndEncrypt, keys));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_MsgSignEncrypt_Basic256Sha256);

void BM_LfsrSweep(benchmark::State& state) {
  // Full pseudo-random pass over a /16 (zmap-style address permutation).
  std::uint64_t seed = 9;
  for (auto _ : state) {
    AddressSweep sweep(parse_cidr("10.20.0.0/16"), seed++);
    std::uint64_t sum = 0;
    while (auto ip = sweep.next()) sum += *ip;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_LfsrSweep);

void BM_BatchGcd64(benchmark::State& state) {
  Rng rng(10);
  std::vector<Bignum> moduli;
  for (int i = 0; i < 64; ++i) {
    moduli.push_back(Bignum::generate_prime(rng, 128, 6) * Bignum::generate_prime(rng, 128, 6));
  }
  for (auto _ : state) benchmark::DoNotOptimize(batch_gcd(moduli));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BatchGcd64);

}  // namespace
}  // namespace opcua_study

BENCHMARK_MAIN();
