// Figure 6: authentication methods, accessibility and classification of
// all reachable servers.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const AuthStats& stats = analysis.auth;

  std::puts("Figure 6: offered authentication methods and accessibility (reproduced)\n");
  TextTable table;
  table.set_header({"tokens", "hosts", "accessible", "auth-rejected", "cert not accepted"});
  for (const auto& row : stats.rows) {
    std::string tokens;
    if (row.anonymous) tokens += "anon ";
    if (row.credentials) tokens += "cred ";
    if (row.certificate) tokens += "cert ";
    if (row.token) tokens += "token";
    table.add_row({tokens, fmt_int(row.total()),
                   fmt_int(row.production + row.test + row.unclassified),
                   fmt_int(row.auth_rejected), fmt_int(row.channel_rejected)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\naccessibility overview:");
  std::printf("accessible        %s %d\n", render_bar(stats.accessible, stats.servers).c_str(),
              stats.accessible);
  std::printf("auth rejected     %s %d\n", render_bar(stats.auth_rejected, stats.servers).c_str(),
              stats.auth_rejected);
  std::printf("cert not accepted %s %d\n\n",
              render_bar(stats.channel_rejected, stats.servers).c_str(), stats.channel_rejected);

  std::vector<ComparisonRow> rows = {
      compare_num("servers", 1114, stats.servers, 0),
      compare_num("secure channel possible for anyone", 1034, stats.channel_capable, 0),
      compare_num("certificate not accepted", 80, stats.channel_rejected, 0),
      compare_num("anonymous access offered", 572, stats.anonymous_offered, 0),
      compare_num("anonymous among channel-capable (50%)", 563,
                  stats.anonymous_channel_capable, 0),
      compare_num("anonymous despite forced security (71)", 71, stats.anonymous_secure_only, 0),
      compare_num("publicly accessible", 493, stats.accessible, 0),
  };
  std::fputs(render_comparison("Figure 6 vs paper", rows).c_str(), stdout);
  return 0;
}
