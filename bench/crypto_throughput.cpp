// Crypto fast-path throughput: the 64-bit limb core vs. the retired
// 32-bit core, plus the batch-GCD scaling curve.
//
// Three measurements drive the §5.3 / deployment hot paths:
//  - keygen:   2048-bit RSA key generation (the deployment wall-clock
//              driver — windowed Montgomery + packed sieve vs. the old
//              ladder + per-prime trial division),
//  - modexp:   2048-bit modular exponentiation (the secure-channel and
//              signature primitive),
//  - batchgcd: shared-prime sweep time vs. modulus count (product +
//              remainder trees on 512-bit moduli), checked for clearly
//              sub-quadratic growth — the property that makes a 100k-host
//              corpus feasible where pairwise GCD is O(n²).
// Both cores consume the same Rng streams, so the bench also *asserts*
// the determinism invariant: old and new generate bit-identical keys.
// Results are emitted to BENCH_crypto.json for trend tracking.
//
//   ./build/crypto_throughput [--quick] [--json PATH] [max_moduli]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/batch_gcd.hpp"
#include "crypto/rsa.hpp"
#include "legacy_bignum32.hpp"
#include "report/report.hpp"
#include "obs/log.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kSeed = 20200209;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

Bignum new_from_legacy(const legacy32::Bignum& v) { return Bignum::from_bytes_be(v.to_bytes_be()); }

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_crypto.json";
  std::size_t max_moduli = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      max_moduli = static_cast<std::size_t>(std::atol(argv[i]));
    }
  }

  bool all_equal = true;

  // ---- keygen: 2048-bit keys, same seeds through both cores -------------
  const int keygen_count = quick ? 1 : 3;
  obs::logf(obs::LogLevel::info, "[bench] keygen: %d x 2048-bit on the 64-bit core...", keygen_count);
  std::vector<RsaKeyPair> new_keys;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < keygen_count; ++i) {
    Rng rng(kSeed + static_cast<std::uint64_t>(i));
    new_keys.push_back(rsa_generate(rng, 2048, 12));
  }
  const double keygen_new_s = seconds_since(start) / keygen_count;

  obs::logf(obs::LogLevel::info, "[bench] keygen: %d x 2048-bit on the legacy 32-bit core...",
               keygen_count);
  std::vector<legacy32::KeyPublic> old_keys;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < keygen_count; ++i) {
    Rng rng(kSeed + static_cast<std::uint64_t>(i));
    old_keys.push_back(legacy32::generate_key(rng, 2048, 12));
  }
  const double keygen_old_s = seconds_since(start) / keygen_count;
  for (int i = 0; i < keygen_count; ++i) {
    all_equal &= new_keys[static_cast<std::size_t>(i)].pub.n ==
                 new_from_legacy(old_keys[static_cast<std::size_t>(i)].n);
  }
  const double keygen_ratio = keygen_old_s / std::max(keygen_new_s, 1e-12);

  // ---- modexp: 2048-bit base^exp mod n ----------------------------------
  Rng mx_rng(kSeed ^ 0x6d78);  // "mx"
  legacy32::Bignum old_mod = legacy32::Bignum::random_bits(mx_rng, 2048);
  old_mod.set_bit(2047);
  old_mod.set_bit(0);
  legacy32::Bignum old_base = legacy32::Bignum::random_bits(mx_rng, 2048);
  legacy32::Bignum old_exp = legacy32::Bignum::random_bits(mx_rng, 2048);
  const Bignum new_mod = new_from_legacy(old_mod);
  const Bignum new_base = new_from_legacy(old_base);
  const Bignum new_exp = new_from_legacy(old_exp);

  const int modexp_new_reps = quick ? 12 : 60;
  const int modexp_old_reps = quick ? 3 : 12;
  obs::logf(obs::LogLevel::info, "[bench] modexp: %d reps new / %d reps legacy...", modexp_new_reps,
               modexp_old_reps);
  Bignum new_result;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < modexp_new_reps; ++i) {
    new_result = Bignum::mod_pow(new_base, new_exp, new_mod);
  }
  const double modexp_new_s = seconds_since(start) / modexp_new_reps;
  legacy32::Bignum old_result;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < modexp_old_reps; ++i) {
    old_result = legacy32::Montgomery(old_mod).pow(old_base, old_exp);
  }
  const double modexp_old_s = seconds_since(start) / modexp_old_reps;
  all_equal &= new_result == new_from_legacy(old_result);
  const double modexp_ratio = modexp_old_s / std::max(modexp_new_s, 1e-12);

  // ---- batch-GCD scaling: 512-bit moduli --------------------------------
  std::vector<std::size_t> counts = quick ? std::vector<std::size_t>{250, 1000, 4000}
                                          : std::vector<std::size_t>{1000, 10000, 100000};
  if (max_moduli) {
    while (counts.size() > 1 && counts.back() > max_moduli) counts.pop_back();
    if (counts.back() != max_moduli && max_moduli > counts.front()) counts.push_back(max_moduli);
  }
  Rng bg_rng(kSeed ^ 0x6267);  // "bg"
  std::vector<Bignum> moduli;
  moduli.reserve(counts.back());
  while (moduli.size() < counts.back()) {
    Bignum m = Bignum::random_bits(bg_rng, 512);
    m.set_bit(511);
    m.set_bit(0);
    moduli.push_back(std::move(m));
  }
  struct ScalePoint {
    std::size_t count;
    double seconds;
  };
  std::vector<ScalePoint> scale;
  for (const std::size_t count : counts) {
    obs::logf(obs::LogLevel::info, "[bench] batch-GCD over %zu x 512-bit moduli...", count);
    const std::vector<Bignum> slice(moduli.begin(),
                                    moduli.begin() + static_cast<std::ptrdiff_t>(count));
    start = std::chrono::steady_clock::now();
    const BatchGcdResult result = batch_gcd(slice);
    scale.push_back({count, seconds_since(start)});
    (void)result;
  }
  // Legacy tree at the smallest count only (it pays quadratic divmod on
  // every node and would dominate the bench at the larger sizes).
  obs::logf(obs::LogLevel::info, "[bench] legacy batch-GCD over %zu moduli...", counts.front());
  std::vector<legacy32::Bignum> old_moduli;
  {
    Rng rng(kSeed ^ 0x6267);
    for (std::size_t i = 0; i < counts.front(); ++i) {
      legacy32::Bignum m = legacy32::Bignum::random_bits(rng, 512);
      m.set_bit(511);
      m.set_bit(0);
      old_moduli.push_back(std::move(m));
    }
  }
  start = std::chrono::steady_clock::now();
  const std::vector<legacy32::Bignum> old_shared = legacy32::batch_gcd(old_moduli);
  const double batch_old_s = seconds_since(start);
  const double batch_ratio = batch_old_s / std::max(scale.front().seconds, 1e-12);
  // Same inputs → the shared/not-shared verdicts must agree bit for bit.
  {
    const std::vector<Bignum> slice(moduli.begin(),
                                    moduli.begin() + static_cast<std::ptrdiff_t>(counts.front()));
    const BatchGcdResult again = batch_gcd(slice, 1);
    for (std::size_t i = 0; i < counts.front(); ++i) {
      all_equal &= again.shared_factor[i] == new_from_legacy(old_shared[i]);
    }
  }
  // Empirical scaling exponent: t ~ count^e between the curve's endpoints.
  const double growth_exponent =
      std::log(scale.back().seconds / std::max(scale.front().seconds, 1e-12)) /
      std::log(static_cast<double>(scale.back().count) / static_cast<double>(scale.front().count));

  // ---- report -----------------------------------------------------------
  std::puts("Crypto fast path (64-bit limb core vs. legacy 32-bit core)\n");
  TextTable table;
  table.set_header({"primitive", "new", "old", "speedup"});
  table.add_row({"2048-bit keygen", fmt_double(1.0 / keygen_new_s, 2) + " keys/s",
                 fmt_double(1.0 / keygen_old_s, 2) + " keys/s", fmt_double(keygen_ratio, 1) + "x"});
  table.add_row({"2048-bit modexp", fmt_double(1.0 / modexp_new_s, 1) + " ops/s",
                 fmt_double(1.0 / modexp_old_s, 1) + " ops/s", fmt_double(modexp_ratio, 1) + "x"});
  table.add_row({"batch-GCD (" + fmt_int(static_cast<long>(counts.front())) + " moduli)",
                 fmt_double(scale.front().seconds, 3) + " s", fmt_double(batch_old_s, 3) + " s",
                 fmt_double(batch_ratio, 1) + "x"});
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nBatch-GCD scaling (512-bit moduli)");
  TextTable curve;
  curve.set_header({"moduli", "seconds", "us/modulus"});
  for (const auto& point : scale) {
    curve.add_row({fmt_int(static_cast<long>(point.count)), fmt_double(point.seconds, 3),
                   fmt_double(1e6 * point.seconds / static_cast<double>(point.count), 1)});
  }
  std::fputs(curve.str().c_str(), stdout);

  const std::vector<ComparisonRow> rows = {
      {"old and new cores generate identical keys/results", "equal",
       all_equal ? "equal" : "MISMATCH", all_equal},
      {"2048-bit keygen speedup", ">= 5x", fmt_double(keygen_ratio, 1) + "x", keygen_ratio >= 5.0},
      {"2048-bit modexp speedup", ">= 4x", fmt_double(modexp_ratio, 1) + "x", modexp_ratio >= 4.0},
      // Karatsuba-backed trees give t ~ n^1.3..1.5 (log factors included);
      // pairwise GCD is exactly 2. 1.6 keeps the check robust to memory
      // pressure on the 100k point while still pinning sub-quadratic.
      {"batch-GCD scaling exponent (1 = linear, 2 = quadratic)", "< 1.6",
       fmt_double(growth_exponent, 2), growth_exponent < 1.6},
  };
  std::fputs(render_comparison("Crypto fast path vs. legacy core", rows).c_str(), stdout);

  // ---- machine-readable trajectory --------------------------------------
  {
    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n"
         << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
         << "  \"keygen_2048\": {\"new_keys_per_sec\": " << 1.0 / keygen_new_s
         << ", \"old_keys_per_sec\": " << 1.0 / keygen_old_s << ", \"speedup\": " << keygen_ratio
         << "},\n"
         << "  \"modexp_2048\": {\"new_ops_per_sec\": " << 1.0 / modexp_new_s
         << ", \"old_ops_per_sec\": " << 1.0 / modexp_old_s << ", \"speedup\": " << modexp_ratio
         << "},\n"
         << "  \"batch_gcd\": {\"modulus_bits\": 512, \"points\": [";
    for (std::size_t i = 0; i < scale.size(); ++i) {
      json << (i ? ", " : "") << "{\"count\": " << scale[i].count
           << ", \"seconds\": " << scale[i].seconds << "}";
    }
    json << "], \"old_seconds_at_" << counts.front() << "\": " << batch_old_s
         << ", \"speedup_at_" << counts.front() << "\": " << batch_ratio
         << ", \"scaling_exponent\": " << growth_exponent << "},\n"
         << "  \"old_new_results_identical\": " << (all_equal ? "true" : "false") << "\n"
         << "}\n";
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }

  // Correctness gates the exit code; the speedup targets are reported
  // above but depend on the host, so they do not fail CI smoke runs.
  return all_equal ? 0 : 1;
}
