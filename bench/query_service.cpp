// Study-service throughput: cold vs cached query latency through the
// CampaignCatalog, and the incremental-series append against a full
// batch re-walk.
//
// Builds a synthetic K-member campaign history (chunked snapshot files
// with posture sketch sidecars, the same host shape the diff and series
// benches use), registers it with a CampaignCatalog, and measures:
//   cold/cached:  the first study/posture query computes the artifact;
//                 repeats are pointer reads + JSON rendering. The ratio
//                 is the catalog's reason to exist.
//   incremental:  appending member K to a resident series (one sketch
//                 load + one match) vs analyze_series over all K+1
//                 members with sketches disabled (the batch re-walk).
//                 The guarded floor is >= 4x.
// It verifies the resident series analysis matches the batch re-walk
// down to the report JSON bytes, races the query battery across a
// worker pool against inline execution (byte-identical responses), and
// emits BENCH_svc.json for the CI bench-regression guard.
//
//   ./build/query_service [--quick] [--json PATH] [--hosts N]
//                         [--members K]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/keycache.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "series/sketch.hpp"
#include "study/followup.hpp"
#include "svc/service.hpp"
#include "util/date.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kBaseSeed = 20200911;

double micros_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Base certificates: a small signed fleet, then per-host unique DERs by
/// perturbing trailing signature bytes — parseable, unique thumbprints,
/// zero per-host signing cost (same scheme as the series bench).
std::vector<Bytes> make_cert_fleet() {
  KeyFactory keys(kBaseSeed, "");
  std::vector<Bytes> fleet;
  for (int i = 0; i < 24; ++i) {
    const RsaKeyPair kp = keys.get("svc-base-" + std::to_string(i), 512);
    CertificateSpec spec;
    spec.subject = {"svc device " + std::to_string(i), "Service Manufacturing", "DE"};
    spec.signature_hash = i % 3 == 0 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
    spec.serial = Bignum{static_cast<std::uint64_t>(7000 + i)};
    spec.not_before_days = days_from_civil({i % 2 ? 2017 : 2019, 5, 1});
    spec.not_after_days = spec.not_before_days + 3650;
    spec.application_uri = "urn:svc:device:" + std::to_string(i);
    fleet.push_back(x509_create(spec, kp.pub, kp.priv));
  }
  return fleet;
}

Bytes unique_cert(const std::vector<Bytes>& fleet, std::size_t i) {
  Bytes der = fleet[i % fleet.size()];
  for (std::size_t b = 0; b < 4; ++b) {
    der[der.size() - 1 - b] ^= static_cast<std::uint8_t>(i >> (8 * b));
  }
  return der;
}

/// Deterministic synthetic base host #i — the study's posture archetypes
/// (same shape as the diff/series benches, so the numbers compare).
HostScanRecord make_host(std::size_t i, const std::vector<Bytes>& fleet) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x0a000000u + static_cast<std::uint32_t>(i));
  host.port = i % 13 == 0 ? 4841 : kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 48);
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.product_uri = "http://example.org/svc";
  host.application_name = "svc host " + std::to_string(i);
  host.application_uri = "urn:generic:opcua:svc-" + std::to_string(i);
  host.software_version = "2." + std::to_string(i % 4) + ".0";

  const Bytes cert = i % 5 == 4 ? fleet[i % fleet.size()] : unique_cert(fleet, i);
  auto add_endpoint = [&](MessageSecurityMode mode, SecurityPolicy policy, bool with_cert) {
    EndpointObservation ep;
    ep.url = "opc.tcp://svc" + std::to_string(i) + ":4840/";
    ep.mode = mode;
    ep.policy_uri = std::string(policy_info(policy).uri);
    ep.policy = policy;
    ep.policy_known = true;
    ep.token_types = i % 3 == 0 ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                                : std::vector<UserTokenType>{UserTokenType::UserName};
    if (with_cert) ep.certificate_der = cert;
    host.endpoints.push_back(std::move(ep));
  };
  switch (i % 4) {
    case 0: add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, false); break;
    case 1:
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256, true);
      break;
    case 2:
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
    default:
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
  }
  host.channel = ChannelOutcome::established;
  host.anonymous_offered = i % 3 == 0;
  host.session = SessionOutcome::not_attempted;
  host.bytes_sent = 40000 + (i % 1000);
  host.duration_seconds = 90.0;
  return host;
}

/// Per-query mean over `repeats` runs of the same request, microseconds.
double timed_query_us(svc::QueryService& service, const svc::QueryRequest& request, int repeats) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) (void)service.execute(request);
  return micros_since(start) / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_svc.json";
  std::size_t hosts = 0;
  std::size_t members = 6;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--members") == 0 && i + 1 < argc) {
      members = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  if (hosts == 0) hosts = quick ? 15000 : 120000;
  if (members < 3) members = 3;

  obs::set_enabled(true);
  obs::logf(obs::LogLevel::info, "[bench] study service: %zu hosts/member, %zu members", hosts,
            members);

  // ---- generate: base campaign + K-1 evolution steps ----------------------
  const std::vector<Bytes> fleet = make_cert_fleet();
  std::vector<std::string> paths;
  for (std::size_t m = 0; m < members; ++m) {
    paths.push_back("/tmp/opcua_svc_" + std::to_string(hosts) + "_m" + std::to_string(m) + ".bin");
  }
  CampaignSet set;
  {
    SnapshotWriter writer(paths[0], kBaseSeed);
    writer.set_campaign("bench-svc-2020", days_from_civil({2020, 9, 11}));
    writer.begin_snapshot(0, days_from_civil({2020, 9, 11}));
    for (std::size_t i = 0; i < hosts; ++i) writer.add_host(make_host(i, fleet));
    writer.end_snapshot(hosts * 2, hosts + hosts / 2);
    writer.finish();
  }
  set.add_file(paths[0], kBaseSeed);
  FollowupConfig config;
  config.campaign_label = "bench-svc-followup";
  config.mint_key_bits = 512;
  config.key_cache_path = "";
  for (std::size_t m = 1; m < members; ++m) {
    extend_series(set, config, paths[m], kBaseSeed + m);
  }

  // ---- resident catalog + query service -----------------------------------
  svc::CampaignCatalog catalog;
  std::vector<std::string> names;
  for (std::size_t m = 0; m < members; ++m) {
    std::string name = "m";
    name += std::to_string(m);
    names.push_back(std::move(name));
    catalog.register_campaign(names.back(), paths[m], m == 0 ? kBaseSeed : kBaseSeed + m);
  }
  svc::QueryServiceOptions service_options;
  service_options.workers = 8;
  svc::QueryService service(catalog, service_options);

  // ---- cold vs cached query latency ---------------------------------------
  const int repeats = quick ? 16 : 32;
  svc::QueryRequest study_query;
  study_query.kind = svc::QueryRequest::Kind::study;
  study_query.campaign = "m0";
  auto start = std::chrono::steady_clock::now();
  (void)service.execute(study_query);
  const double cold_study_us = micros_since(start);
  const double cached_study_us = timed_query_us(service, study_query, repeats);

  svc::QueryRequest posture_query;
  posture_query.kind = svc::QueryRequest::Kind::posture;
  posture_query.campaign = "m1";
  start = std::chrono::steady_clock::now();
  (void)service.execute(posture_query);
  const double cold_posture_us = micros_since(start);
  const double cached_posture_us = timed_query_us(service, posture_query, repeats);

  // ---- incremental append vs full batch re-walk ---------------------------
  // Resident series over members 0..K-2 (posture loads come from the
  // sketch sidecars extend_series wrote, or the cache warmed above).
  std::vector<std::string> initial(names.begin(), names.end() - 1);
  catalog.register_series("history", initial);
  start = std::chrono::steady_clock::now();
  catalog.append_to_series("history", names.back());
  const double incremental_append_us = micros_since(start);

  SeriesOptions batch_options;
  batch_options.threads = 1;
  batch_options.use_sketches = false;
  start = std::chrono::steady_clock::now();
  const SeriesAnalysis batch = analyze_series(set, batch_options);
  const double full_rewalk_us = micros_since(start);
  const double incremental_speedup = full_rewalk_us / std::max(incremental_append_us, 1e-9);

  const bool series_identical =
      series_analysis_json(*catalog.series("history")) == series_analysis_json(batch);

  // ---- pooled vs inline determinism ---------------------------------------
  std::vector<std::string> battery = {
      "kind=catalog",
      "kind=posture campaign=m0 as_limit=8",
      "kind=posture campaign=m1 deficient=1",
      "kind=study campaign=m0",
      "kind=diff base=m0 followup=m1",
      "kind=series series=history",
  };
  bool pooled_equals_inline = true;
  std::vector<std::future<svc::QueryResponse>> futures;
  std::vector<svc::QueryRequest> requests;
  for (const std::string& text : battery) {
    requests.push_back(svc::parse_query_request(text));
    futures.push_back(service.submit(requests.back()));
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pooled_equals_inline =
        pooled_equals_inline && futures[i].get().body == service.execute(requests[i]).body;
  }

  for (const auto& path : paths) {
    std::remove(path.c_str());
    std::remove(posture_sketch_path(path).c_str());
  }

  // ---- report -------------------------------------------------------------
  std::puts("Study-service query latency and incremental-series cost\n");
  TextTable table;
  table.set_header({"query", "cold us", "cached us", "speedup"});
  table.add_row({"study m0", fmt_int(static_cast<long>(cold_study_us)),
                 fmt_int(static_cast<long>(cached_study_us)),
                 fmt_double(cold_study_us / std::max(cached_study_us, 1e-9), 1) + "x"});
  table.add_row({"posture m1", fmt_int(static_cast<long>(cold_posture_us)),
                 fmt_int(static_cast<long>(cached_posture_us)),
                 fmt_double(cold_posture_us / std::max(cached_posture_us, 1e-9), 1) + "x"});
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nseries (%zu members): incremental append %s us, full re-walk %s us\n", members,
              fmt_int(static_cast<long>(incremental_append_us)).c_str(),
              fmt_int(static_cast<long>(full_rewalk_us)).c_str());

  std::vector<ComparisonRow> rows = {
      {"resident series == batch re-walk (report JSON bytes)", "equal",
       series_identical ? "equal" : "MISMATCH", series_identical},
      {"pooled == inline responses (8 workers)", "equal",
       pooled_equals_inline ? "equal" : "MISMATCH", pooled_equals_inline},
      {"incremental append vs full re-walk", ">= 4x", fmt_double(incremental_speedup, 1) + "x",
       incremental_speedup >= 4.0},
  };
  std::fputs(render_comparison("Study service: resident vs batch", rows).c_str(), stdout);

  // ---- machine-readable trajectory ----------------------------------------
  {
    JsonWriter json;
    json.begin_object()
        .field("quick", quick)
        .field("hosts_per_member", static_cast<std::uint64_t>(hosts))
        .field("members", static_cast<std::uint64_t>(members))
        .field("cold_study_us", cold_study_us)
        .field("cached_study_us", cached_study_us)
        .field("study_cache_speedup", cold_study_us / std::max(cached_study_us, 1e-9))
        .field("cold_posture_us", cold_posture_us)
        .field("cached_posture_us", cached_posture_us)
        .field("posture_cache_speedup", cold_posture_us / std::max(cached_posture_us, 1e-9))
        .field("incremental_append_us", incremental_append_us)
        .field("full_rewalk_us", full_rewalk_us)
        .field("incremental_speedup", incremental_speedup)
        .field("series_outputs_identical", series_identical)
        .field("pooled_equals_inline", pooled_equals_inline)
        .end_object();
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }

  // Output identity and the incremental floor gate the exit code; raw
  // latencies are host-dependent and guarded by the CI baseline check.
  return series_identical && pooled_equals_inline && incremental_speedup >= 4.0 ? 0 : 1;
}
