// Figure 8: configuration deficits split by manufacturer (8a) and by
// autonomous system (8b), plus the paper's headline deficit roll-up.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

namespace {

void print_breakdown(const char* title,
                     const std::map<std::string, std::map<std::string, int>>& by_label) {
  std::printf("%s\n", title);
  for (const auto& [deficit, labels] : by_label) {
    int total = 0;
    for (const auto& [label, count] : labels) total += count;
    std::printf("  %-22s %4d total: ", deficit.c_str(), total);
    // Largest contributors first.
    std::vector<std::pair<int, std::string>> sorted;
    for (const auto& [label, count] : labels) sorted.emplace_back(count, label);
    std::sort(sorted.rbegin(), sorted.rend());
    int shown = 0;
    for (const auto& [count, label] : sorted) {
      if (shown++ == 4) break;
      std::printf("%s=%d ", label.c_str(), count);
    }
    std::puts("");
  }
}

}  // namespace

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const DeficitBreakdown& stats = analysis.deficits;

  std::puts("Figure 8: deficit classes (reproduced)\n");
  TextTable table;
  table.set_header({"deficit", "hosts", ""});
  table.add_row({"None (no security)", fmt_int(stats.none_only),
                 render_bar(stats.none_only, 600, 30)});
  table.add_row({"Deprecated policies (max)", fmt_int(stats.deprecated_only),
                 render_bar(stats.deprecated_only, 600, 30)});
  table.add_row({"Too weak certificate", fmt_int(stats.weak_certificate),
                 render_bar(stats.weak_certificate, 600, 30)});
  table.add_row({"Certificate reuse", fmt_int(stats.cert_reuse),
                 render_bar(stats.cert_reuse, 600, 30)});
  table.add_row({"Anonymous access", fmt_int(stats.anonymous_access),
                 render_bar(stats.anonymous_access, 600, 30)});
  std::fputs(table.str().c_str(), stdout);
  std::puts("");

  print_breakdown("Figure 8a: by manufacturer", stats.by_manufacturer);
  std::puts("");
  {
    // 8b: translate AS keys into printable labels.
    std::map<std::string, std::map<std::string, int>> by_as_label;
    for (const auto& [deficit, ases] : stats.by_as) {
      for (const auto& [asn, count] : ases) {
        by_as_label[deficit]["AS" + std::to_string(asn)] = count;
      }
    }
    print_breakdown("Figure 8b: by autonomous system", by_as_label);
  }

  const double pct = static_cast<double>(stats.deficient_total) / stats.servers;
  std::vector<ComparisonRow> rows = {
      compare_num("None-only hosts", 270, stats.none_only, 0),
      compare_num("deprecated-max hosts", 280, stats.deprecated_only, 0),
      compare_num("weak-certificate hosts", 591, stats.weak_certificate, 0),
      // 418 = the manufacturer's three clusters (385+9+6, §5.3) plus six
      // 3-host clusters the paper's ">= 3 hosts" threshold also captures.
      compare_num("certificate-reuse hosts (>=3 clusters)", 418, stats.cert_reuse, 0),
      compare_num("anonymous access offered", 572, stats.anonymous_access, 0),
      compare_num("deficient total", 1025, stats.deficient_total, 0),
      {"deficient share", "92%", fmt_pct(pct), std::abs(pct - 0.92) < 0.005},
  };
  std::fputs(render_comparison("Figure 8 / headline vs paper", rows).c_str(), stdout);
  return 0;
}
