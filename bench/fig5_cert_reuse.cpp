// Figure 5: certificate reuse — hosts authenticating with the same
// certificate, and the autonomous systems those hosts sit in.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const ReuseStats& stats = analysis.reuse;

  std::puts("Figure 5: certificates reused across hosts (reproduced)\n");
  TextTable table;
  table.set_header({"certificate", "hosts", "ASes", "subject organization", ""});
  int shown = 0;
  for (const auto& cluster : stats.clusters) {
    table.add_row({cluster.fingerprint_hex.substr(0, 12), fmt_int(cluster.host_count),
                   fmt_int(static_cast<long>(cluster.ases.size())), cluster.subject_organization,
                   render_bar(cluster.host_count, 400, 30)});
    if (++shown == 21) break;
  }
  std::fputs(table.str().c_str(), stdout);

  const auto& top = stats.clusters.front();
  std::vector<ComparisonRow> rows = {
      compare_num("certificates on >= 3 hosts", 9, stats.clusters_ge3, 0),
      compare_num("largest cluster host count", 385, top.host_count, 0),
      compare_num("largest cluster AS spread", 24, static_cast<double>(top.ases.size()), 0),
      compare_num("2nd same-manufacturer cluster (9 hosts)", 9, stats.clusters[1].host_count, 0),
      compare_num("2nd cluster AS spread", 8, static_cast<double>(stats.clusters[1].ases.size()),
                  0),
      compare_num("3rd same-manufacturer cluster (6 hosts)", 6, stats.clusters[2].host_count, 0),
      compare_num("3rd cluster AS spread", 5, static_cast<double>(stats.clusters[2].ases.size()),
                  0),
  };
  std::fputs(render_comparison("Figure 5 vs paper", rows).c_str(), stdout);
  std::printf("\ndistinct certificates in this measurement: %d (see EXPERIMENTS.md for the\n"
              "interpretation of the paper's x-axis extent)\n",
              stats.distinct_certificates);
  return 0;
}
