// Campaign-series throughput: N-way host-identity chaining and timeline
// analysis at follow-up-study scale.
//
// Builds a synthetic base measurement of N hosts (chunked v5 file), grows
// it into a 4-campaign series with extend_series (each step a fresh
// deterministic draw of the evolution model), then analyzes the series
// three ways:
//   stream/1:  every member streamed chunk-by-chunk, single thread
//   stream/T:  same chunks fanned out to the thread pool (chunk-ordered
//              posture merge — bit-identical by construction)
//   load-all:  every member fully materialized in an in-memory
//              CampaignSet, then analyzed
// It verifies all three produce the identical SeriesAnalysis (down to the
// report JSON bytes), reports records/s over the whole series and a
// peak-RSS proxy (the streamed series must stay bounded by two posture
// vectors plus timeline state while load-all holds every decoded record
// of every member), and emits BENCH_series.json for the CI
// bench-regression guard.
//
//   ./build/campaign_series [--quick] [--json PATH] [--hosts N[,M...]]
//                           [--threads T] [--members K]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/keycache.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "series/series.hpp"
#include "study/followup.hpp"
#include "util/date.hpp"
#include "obs/log.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kBaseSeed = 20200830;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

/// Base certificates: a small signed fleet, then per-host unique DERs by
/// perturbing trailing signature bytes — parseable (nothing in the series
/// verifies signatures), unique thumbprints, zero per-host signing cost.
std::vector<Bytes> make_cert_fleet() {
  KeyFactory keys(kBaseSeed, "");
  std::vector<Bytes> fleet;
  for (int i = 0; i < 24; ++i) {
    const RsaKeyPair kp = keys.get("series-base-" + std::to_string(i), 512);
    CertificateSpec spec;
    spec.subject = {"series device " + std::to_string(i), "Series Manufacturing", "DE"};
    spec.signature_hash = i % 3 == 0 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
    spec.serial = Bignum{static_cast<std::uint64_t>(3000 + i)};
    spec.not_before_days = days_from_civil({i % 2 ? 2017 : 2019, 5, 1});
    spec.not_after_days = spec.not_before_days + 3650;
    spec.application_uri = "urn:series:device:" + std::to_string(i);
    fleet.push_back(x509_create(spec, kp.pub, kp.priv));
  }
  return fleet;
}

Bytes unique_cert(const std::vector<Bytes>& fleet, std::size_t i) {
  Bytes der = fleet[i % fleet.size()];
  for (std::size_t b = 0; b < 4; ++b) {
    der[der.size() - 1 - b] ^= static_cast<std::uint8_t>(i >> (8 * b));
  }
  return der;
}

/// Deterministic synthetic base host #i — the study's posture archetypes
/// with an 80/20 unique/reused certificate split (same shape the diff
/// bench uses, so series and diff numbers compare).
HostScanRecord make_host(std::size_t i, const std::vector<Bytes>& fleet) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x0a000000u + static_cast<std::uint32_t>(i));
  host.port = i % 13 == 0 ? 4841 : kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 48);
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.product_uri = "http://example.org/series";
  host.application_name = "series host " + std::to_string(i);
  host.application_uri = "urn:generic:opcua:series-" + std::to_string(i);
  host.software_version = "2." + std::to_string(i % 4) + ".0";

  const Bytes cert = i % 5 == 4 ? fleet[i % fleet.size()] : unique_cert(fleet, i);
  auto add_endpoint = [&](MessageSecurityMode mode, SecurityPolicy policy, bool with_cert) {
    EndpointObservation ep;
    ep.url = "opc.tcp://series" + std::to_string(i) + ":4840/";
    ep.mode = mode;
    ep.policy_uri = std::string(policy_info(policy).uri);
    ep.policy = policy;
    ep.policy_known = true;
    ep.token_types = i % 3 == 0 ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                                : std::vector<UserTokenType>{UserTokenType::UserName};
    if (with_cert) ep.certificate_der = cert;
    host.endpoints.push_back(std::move(ep));
  };
  switch (i % 4) {
    case 0: add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, false); break;
    case 1:
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256, true);
      break;
    case 2:
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
    default:
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
  }
  host.channel = ChannelOutcome::established;
  host.anonymous_offered = i % 3 == 0;
  host.session = SessionOutcome::not_attempted;
  host.bytes_sent = 40000 + (i % 1000);
  host.duration_seconds = 90.0;
  return host;
}

struct SizeResult {
  std::size_t hosts = 0;        // base-member hosts
  std::uint64_t total_records = 0;  // across every member
  double generate_seconds = 0;  // base write + K extend_series steps
  double stream1_seconds = 0;
  double streamN_seconds = 0;
  double loadall_seconds = 0;
  std::uint64_t rss_after_stream_kb = 0;
  std::uint64_t rss_after_loadall_kb = 0;
  double full_span_fraction = 0;   // timelines spanning every member
  double mean_confidence = 0;
  bool identical = false;
  double records_per_s(double seconds) const {
    return static_cast<double>(total_records) / std::max(seconds, 1e-9);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_series.json";
  std::vector<std::size_t> sizes;
  int threads = 0;
  std::size_t members = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--members") == 0 && i + 1 < argc) {
      members = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p;) {
        sizes.push_back(static_cast<std::size_t>(std::atoll(p)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  if (sizes.empty()) {
    sizes = quick ? std::vector<std::size_t>{20000} : std::vector<std::size_t>{250000};
  }
  if (members < 2) members = 2;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 0) threads = static_cast<int>(hardware);

  std::string size_list;
  for (const auto s : sizes) size_list += " " + std::to_string(s);
  obs::logf(obs::LogLevel::info,
            "[bench] campaign series: %zu members, sizes%s, %d analysis threads, %u cores",
            members, size_list.c_str(), threads, hardware);

  const std::vector<Bytes> fleet = make_cert_fleet();
  std::vector<SizeResult> results;

  for (const std::size_t hosts : sizes) {
    SizeResult result;
    result.hosts = hosts;
    std::vector<std::string> paths;
    for (std::size_t m = 0; m < members; ++m) {
      paths.push_back("/tmp/opcua_series_" + std::to_string(hosts) + "_m" + std::to_string(m) +
                      ".bin");
    }

    // ---- generate: base campaign + K evolution steps ---------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: generating %zu-member series...", hosts, members);
    auto start = std::chrono::steady_clock::now();
    CampaignSet series;
    {
      SnapshotWriter writer(paths[0], kBaseSeed);
      writer.set_campaign("bench-series-2020", days_from_civil({2020, 8, 30}));
      writer.begin_snapshot(0, days_from_civil({2020, 8, 30}));
      for (std::size_t i = 0; i < hosts; ++i) writer.add_host(make_host(i, fleet));
      writer.end_snapshot(hosts * 2, hosts + hosts / 2);
      writer.finish();
    }
    series.add_file(paths[0], kBaseSeed);
    FollowupConfig config;
    config.campaign_label = "bench-series-followup";
    // The bench's subject is chaining/analysis throughput and output
    // identity, not minted-certificate conformance: 512-bit mint keys
    // keep the (timed, cold-cache) fleet generation out of the numbers.
    config.mint_key_bits = 512;
    config.key_cache_path = "";
    for (std::size_t m = 1; m < members; ++m) {
      extend_series(series, config, paths[m], kBaseSeed + m);
    }
    result.generate_seconds = seconds_since(start);
    {
      const std::vector<SnapshotMeta> metas = series.final_metas();
      for (const auto& meta : metas) result.total_records += meta.host_count;
    }

    // ---- stream/1 and stream/T ------------------------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: streamed series analysis (1 thread)...", hosts);
    SeriesOptions options;
    options.threads = 1;
    start = std::chrono::steady_clock::now();
    const SeriesAnalysis stream1 = analyze_series(series, options);
    result.stream1_seconds = seconds_since(start);

    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: streamed series analysis (%d threads)...", hosts,
                 threads);
    options.threads = threads;
    start = std::chrono::steady_clock::now();
    const SeriesAnalysis streamN = analyze_series(series, options);
    result.streamN_seconds = seconds_since(start);
    result.rss_after_stream_kb = peak_rss_kb();

    // ---- load-all: every member materialized -----------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: load-all series analysis...", hosts);
    start = std::chrono::steady_clock::now();
    SeriesAnalysis loadall;
    {
      const std::vector<SnapshotMeta> metas = series.final_metas();
      CampaignSet memory;
      for (std::size_t m = 0; m < series.size(); ++m) {
        memory.add_snapshots(SnapshotReader(paths[m], series.member(m).seed).load_all(),
                             metas[m].campaign_label, metas[m].campaign_epoch_days);
      }
      SeriesOptions loadall_options;
      loadall_options.threads = threads;
      loadall = analyze_series(memory, loadall_options);
    }
    result.loadall_seconds = seconds_since(start);
    result.rss_after_loadall_kb = peak_rss_kb();

    result.full_span_fraction =
        stream1.timelines.total == 0
            ? 0
            : static_cast<double>(stream1.timelines.full_span) /
                  static_cast<double>(stream1.timelines.total);
    result.mean_confidence = stream1.mean_link_confidence();
    result.identical = stream1 == streamN && stream1 == loadall &&
                       series_analysis_json(stream1) == series_analysis_json(loadall);
    for (const auto& path : paths) std::remove(path.c_str());
    results.push_back(result);
  }

  // ---- report -----------------------------------------------------------
  std::puts("Campaign-series analysis throughput (base + evolved members)\n");
  TextTable table;
  table.set_header({"hosts/member", "total recs", "gen rec/s", "series/1 rec/s",
                    "series/" + std::to_string(threads) + " rec/s", "scaling",
                    "load-all rec/s", "full-span", "identical"});
  for (const auto& r : results) {
    table.add_row({fmt_int(static_cast<long>(r.hosts)),
                   fmt_int(static_cast<long>(r.total_records)),
                   fmt_int(static_cast<long>(r.records_per_s(r.generate_seconds))),
                   fmt_int(static_cast<long>(r.records_per_s(r.stream1_seconds))),
                   fmt_int(static_cast<long>(r.records_per_s(r.streamN_seconds))),
                   fmt_double(r.stream1_seconds / std::max(r.streamN_seconds, 1e-9), 2) + "x",
                   fmt_int(static_cast<long>(r.records_per_s(r.loadall_seconds))),
                   fmt_pct(r.full_span_fraction), r.identical ? "yes" : "NO"});
  }
  std::fputs(table.str().c_str(), stdout);

  const SizeResult& largest = results.back();
  const double scaling = largest.stream1_seconds / std::max(largest.streamN_seconds, 1e-9);
  bool all_identical = true;
  for (const auto& r : results) all_identical &= r.identical;

  std::printf("\npeak-RSS proxy at %zu hosts/member: %llu MB after streamed series, %llu MB "
              "after load-all\n",
              largest.hosts,
              static_cast<unsigned long long>(largest.rss_after_stream_kb / 1024),
              static_cast<unsigned long long>(largest.rss_after_loadall_kb / 1024));

  std::vector<ComparisonRow> rows = {
      {"series/1 == series/" + std::to_string(threads) + " == load-all (incl. JSON bytes)",
       "equal", all_identical ? "equal" : "MISMATCH", all_identical},
      {"full-span timeline fraction at " + fmt_int(static_cast<long>(largest.hosts)) +
           " hosts/member",
       ">= 15%", fmt_pct(largest.full_span_fraction), largest.full_span_fraction >= 0.15},
  };
  if (hardware >= 4 && threads >= 4) {
    rows.push_back({"thread-scaling speedup on >= 4 cores", ">= 1.5x",
                    fmt_double(scaling, 2) + "x", scaling >= 1.5});
  }
  std::fputs(render_comparison("Campaign series: streamed vs load-all", rows).c_str(), stdout);

  // ---- machine-readable trajectory --------------------------------------
  {
    JsonWriter json;
    json.begin_object()
        .field("quick", quick)
        .field("cores", static_cast<int>(hardware))
        .field("threads", threads)
        .field("members", static_cast<std::uint64_t>(members))
        .key("sizes")
        .begin_array();
    for (const auto& r : results) {
      json.begin_object()
          .field("hosts_per_member", static_cast<std::uint64_t>(r.hosts))
          .field("total_records", r.total_records)
          .field("generate_records_per_s", r.records_per_s(r.generate_seconds))
          .field("series1_records_per_s", r.records_per_s(r.stream1_seconds))
          .field("seriesN_records_per_s", r.records_per_s(r.streamN_seconds))
          .field("thread_scaling", r.stream1_seconds / std::max(r.streamN_seconds, 1e-9))
          .field("loadall_records_per_s", r.records_per_s(r.loadall_seconds))
          .field("rss_after_stream_kb", r.rss_after_stream_kb)
          .field("rss_after_loadall_kb", r.rss_after_loadall_kb)
          .field("full_span_fraction", r.full_span_fraction)
          .field("mean_link_confidence", r.mean_confidence)
          .field("outputs_identical", r.identical)
          .end_object();
    }
    json.end_array()
        .field("largest_hosts_per_member", static_cast<std::uint64_t>(largest.hosts))
        .field("largest_thread_scaling", scaling)
        .field("largest_full_span_fraction", largest.full_span_fraction)
        .field("all_outputs_identical", all_identical)
        .end_object();
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }

  // Output identity gates the exit code; throughput targets are
  // host-dependent and enforced by the CI baseline check instead.
  return all_identical && largest.full_span_fraction >= 0.15 ? 0 : 1;
}
