// Table 2: authentication-type combinations × accessibility ×
// production/test classification.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const AuthStats& stats = analysis.auth;

  std::puts("Table 2: authentication types, accessibility and classification (reproduced)\n");
  TextTable table;
  table.set_header({"anon", "cred", "cert", "token", "production", "test", "unclassified",
                    "auth-reject", "sc-reject", "total"});
  auto dot = [](bool v) { return v ? std::string("x") : std::string(" "); };
  for (const auto& row : stats.rows) {
    table.add_row({dot(row.anonymous), dot(row.credentials), dot(row.certificate), dot(row.token),
                   fmt_int(row.production), fmt_int(row.test), fmt_int(row.unclassified),
                   fmt_int(row.auth_rejected), fmt_int(row.channel_rejected),
                   fmt_int(row.total())});
  }
  table.add_separator();
  table.add_row({"", "", "", "", fmt_int(stats.production), fmt_int(stats.test),
                 fmt_int(stats.unclassified), fmt_int(stats.auth_rejected),
                 fmt_int(stats.channel_rejected), fmt_int(stats.servers)});
  std::fputs(table.str().c_str(), stdout);

  auto row_of = [&](bool anon, bool cred, bool cert, bool token) -> const AuthRow* {
    for (const auto& row : stats.rows) {
      if (row.anonymous == anon && row.credentials == cred && row.certificate == cert &&
          row.token == token) {
        return &row;
      }
    }
    return nullptr;
  };
  const AuthRow* anon_only = row_of(true, false, false, false);
  const AuthRow* cred_only = row_of(false, true, false, false);
  const AuthRow* anon_cred = row_of(true, true, false, false);
  const AuthRow* cct = row_of(false, true, true, true);

  std::vector<ComparisonRow> rows = {
      compare_num("production systems (26%)", 295, stats.production, 0),
      compare_num("test systems (3.8%)", 42, stats.test, 0),
      compare_num("unclassified (14%)", 156, stats.unclassified, 0),
      compare_num("auth-rejected total (48%)", 541, stats.auth_rejected, 0),
      compare_num("secure-channel rejects (7.2%)", 80, stats.channel_rejected, 0),
      compare_num("anon-only row total", 139, anon_only ? anon_only->total() : -1, 0),
      compare_num("anon-only production", 116, anon_only ? anon_only->production : -1, 0),
      compare_num("cred-only auth-rejected (row-sum reconciled)", 467,
                  cred_only ? cred_only->auth_rejected : -1, 0),
      compare_num("anon+cred row total", 365, anon_cred ? anon_cred->total() : -1, 0),
      compare_num("anon+cred unclassified", 134, anon_cred ? anon_cred->unclassified : -1, 0),
      compare_num("cred+cert+token sc-rejects", 43, cct ? cct->channel_rejected : -1, 0),
  };
  std::fputs(render_comparison("Table 2 vs paper", rows).c_str(), stdout);
  std::puts("(the paper's printed row 'credentials-only: 464' is inconsistent with its own");
  std::puts(" column totals 541/1114; we reproduce the reconciled 467 — see EXPERIMENTS.md)");
  return 0;
}
