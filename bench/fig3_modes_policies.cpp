// Figure 3: security modes and policies — support / least-secure /
// most-secure host counts, measured over the wire on the final snapshot.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  ModePolicyStats stats = analysis.modes;

  std::puts("Figure 3 (left): security modes\n");
  TextTable modes;
  modes.set_header({"mode", "supported", "least secure", "most secure", ""});
  for (const auto mode : {MessageSecurityMode::None, MessageSecurityMode::Sign,
                          MessageSecurityMode::SignAndEncrypt}) {
    modes.add_row({security_mode_name(mode), fmt_int(stats.mode_support[mode]),
                   fmt_int(stats.mode_least[mode]), fmt_int(stats.mode_most[mode]),
                   render_bar(stats.mode_support[mode], stats.servers, 30)});
  }
  std::fputs(modes.str().c_str(), stdout);

  std::puts("\nFigure 3 (right): security policies\n");
  TextTable policies;
  policies.set_header({"policy", "supported", "least secure", "most secure", ""});
  for (const auto policy : kAllPolicies) {
    policies.add_row({std::string(policy_info(policy).short_name),
                      fmt_int(stats.policy_support[policy]), fmt_int(stats.policy_least[policy]),
                      fmt_int(stats.policy_most[policy]),
                      render_bar(stats.policy_support[policy], stats.servers, 30)});
  }
  std::fputs(policies.str().c_str(), stdout);

  using SP = SecurityPolicy;
  using MSM = MessageSecurityMode;
  std::vector<ComparisonRow> rows = {
      compare_num("servers", 1114, stats.servers, 0),
      compare_num("mode None supported", 1035, stats.mode_support[MSM::None], 0),
      compare_num("mode Sign supported", 588, stats.mode_support[MSM::Sign], 0),
      compare_num("mode SignAndEncrypt supported", 843, stats.mode_support[MSM::SignAndEncrypt], 0),
      compare_num("Sign as least secure", 28, stats.mode_least[MSM::Sign], 0),
      compare_num("SignAndEncrypt as least secure", 51, stats.mode_least[MSM::SignAndEncrypt], 0),
      compare_num("Sign as most secure", 1, stats.mode_most[MSM::Sign], 0),
      compare_num("only mode None (no security)", 270, stats.none_only, 0),
      compare_num("secure mode available (844 = 75%)", 844, stats.secure_mode_capable, 0),
      compare_num("policy None supported", 1035, stats.policy_support[SP::None], 0),
      compare_num("policy D1 supported", 715, stats.policy_support[SP::Basic128Rsa15], 0),
      compare_num("policy D2 supported", 762, stats.policy_support[SP::Basic256], 0),
      compare_num("policy S1 supported", 10, stats.policy_support[SP::Aes128Sha256RsaOaep], 0),
      compare_num("policy S2 supported", 564, stats.policy_support[SP::Basic256Sha256], 0),
      compare_num("policy S3 supported", 8, stats.policy_support[SP::Aes256Sha256RsaPss], 0),
      compare_num("deprecated policy supported (70%)", 786, stats.deprecated_supported, 0),
      compare_num("deprecated as most secure", 280, stats.deprecated_max, 0),
      compare_num("strong policy enforced (1.4%)", 16, stats.strong_enforcing, 0),
      compare_num("strong policy available", 564, stats.strong_capable, 0),
      compare_num("D1 as least secure", 13, stats.policy_least[SP::Basic128Rsa15], 0),
      compare_num("D2 as least secure", 50, stats.policy_least[SP::Basic256], 0),
      compare_num("S2 as most secure", 556, stats.policy_most[SP::Basic256Sha256], 0),
      compare_num("S3 as most secure", 8, stats.policy_most[SP::Aes256Sha256RsaPss], 0),
  };
  std::fputs(render_comparison("Figure 3 vs paper", rows).c_str(), stdout);
  return 0;
}
