// Figure 4: certificates delivered per announced policy, classified by
// signature hash and key length; conformance annotations (↓ too weak /
// ↑ too strong) against the policy requirements.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  CertConformanceStats stats = analysis.certificates;

  std::puts("Figure 4: certificates implementing announced policies (reproduced)\n");
  TextTable table;
  table.set_header({"policy", "certs", "MD5/1024", "SHA1/1024", "SHA1/2048", "SHA256/2048",
                    "SHA256/4096", "too weak", "too strong"});
  for (const auto policy : kAllPolicies) {
    auto count = [&](HashAlgorithm h, std::size_t bits) {
      const auto& classes = stats.class_counts[policy];
      const auto it = classes.find({h, bits});
      return it == classes.end() ? 0 : it->second;
    };
    table.add_row({std::string(policy_info(policy).short_name),
                   fmt_int(stats.announced_with_cert[policy]),
                   fmt_int(count(HashAlgorithm::md5, 1024)),
                   fmt_int(count(HashAlgorithm::sha1, 1024)),
                   fmt_int(count(HashAlgorithm::sha1, 2048)),
                   fmt_int(count(HashAlgorithm::sha256, 2048)),
                   fmt_int(count(HashAlgorithm::sha256, 4096)),
                   policy == SecurityPolicy::None ? "-" : fmt_int(stats.too_weak[policy]),
                   policy == SecurityPolicy::None ? "-" : fmt_int(stats.too_strong[policy])});
  }
  std::fputs(table.str().c_str(), stdout);

  using SP = SecurityPolicy;
  std::vector<ComparisonRow> rows = {
      compare_num("S2 announcers with too-weak certs (\"429\" marker: 409)", 409,
                  stats.too_weak[SP::Basic256Sha256], 0),
      compare_num("D1 announcers with too-strong certs (75)", 75,
                  stats.too_strong[SP::Basic128Rsa15], 0),
      compare_num("D2 announcers with too-strong certs (5)", 5, stats.too_strong[SP::Basic256], 0),
      compare_num("S1 announcers with too-weak certs (7)", 7,
                  stats.too_weak[SP::Aes128Sha256RsaOaep], 0),
      compare_num("hosts delivering certificates", 1074, stats.hosts_with_cert, 0),
      compare_num("CA-signed certificates (paper: 2)", 2, stats.ca_signed, 0),
      compare_num("weaker in practice than strongest policy (591 = 70% of 844)", 591,
                  stats.weaker_than_max, 0),
  };
  std::fputs(render_comparison("Figure 4 vs paper", rows).c_str(), stdout);
  std::puts("(paper's figure annotates exactly these four bars; MD5 segments on the D1/D2");
  std::puts(" bars correspond to the unannotated MD5 legend entries — see EXPERIMENTS.md)");
  return 0;
}
