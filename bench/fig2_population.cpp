// Figure 2: OPC UA hosts found per weekly measurement, split into discovery
// servers and servers attributed to manufacturers (via ApplicationURI
// clustering), with the follow-references / non-default-port additions.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"
#include "util/date.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const LongitudinalStats& stats = analysis.longitudinal;

  TextTable table;
  table.set_header({"measurement", "total", "discovery", "servers", "Bachmann", "Beckhoff",
                    "Wago", "other", "via refs", "non-4840"});
  for (const auto& week : stats.weeks) {
    auto cluster = [&week](const char* name) {
      const auto it = week.by_manufacturer.find(name);
      return it == week.by_manufacturer.end() ? 0 : it->second;
    };
    int named = cluster("Bachmann") + cluster("Beckhoff") + cluster("Wago");
    table.add_row({format_date(civil_from_days(week.date_days)),
                   fmt_int(week.servers + week.discovery), fmt_int(week.discovery),
                   fmt_int(week.servers), fmt_int(cluster("Bachmann")),
                   fmt_int(cluster("Beckhoff")), fmt_int(cluster("Wago")),
                   fmt_int(week.servers - named), fmt_int(week.via_reference),
                   fmt_int(week.non_default_port)});
  }
  std::puts("Figure 2: OPC UA hosts per measurement (reproduced)\n");
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nhosts over time:");
  for (const auto& week : stats.weeks) {
    const int total = week.servers + week.discovery;
    std::printf("%s %s %4d\n", format_date(civil_from_days(week.date_days)).c_str(),
                render_bar(total, 2100).c_str(), total);
  }

  const auto& last = stats.weeks.back();
  const double discovery_share =
      static_cast<double>(last.discovery) / static_cast<double>(last.discovery + last.servers);
  const auto& first = stats.weeks.front();
  int min_total = 1 << 30, max_total = 0;
  for (const auto& week : stats.weeks) {
    min_total = std::min(min_total, week.servers + week.discovery);
    max_total = std::max(max_total, week.servers + week.discovery);
  }
  std::vector<ComparisonRow> rows = {
      compare_num("servers at last measurement", 1114, last.servers, 0),
      compare_num("minimum weekly total", 1761, min_total, 0),
      compare_num("maximum weekly total", 2069, max_total, 0),
      {"discovery share (last)", "42%", fmt_pct(discovery_share, 1),
       std::abs(discovery_share - 0.42) < 0.01},
      compare_num("Bachmann devices (last)", 406, last.by_manufacturer.at("Bachmann"), 0),
      compare_num("Beckhoff devices (last)", 112, last.by_manufacturer.at("Beckhoff"), 0),
      compare_num("Wago devices (last)", 78, last.by_manufacturer.at("Wago"), 0),
      compare_num("first measurement servers", 1040, first.servers, 0),
  };
  std::fputs(render_comparison("Figure 2 vs paper", rows).c_str(), stdout);
  return 0;
}
