// Cross-campaign diff throughput: host re-identification and posture
// transition matrices at follow-up-study scale.
//
// Builds a synthetic base measurement of N hosts (chunked v5 file),
// evolves it into a follow-up campaign with the deterministic
// FollowupModel, then runs the campaign diff three ways:
//   stream/1:  both campaigns streamed chunk-by-chunk, single thread
//   stream/T:  same chunks fanned out to the thread pool (chunk-ordered
//              posture merge — bit-identical by construction)
//   load-all:  both campaigns fully materialized, then diffed in memory
// It verifies all three produce the identical CampaignDiff, reports
// hosts/s and a peak-RSS proxy (the streamed diff must stay bounded by
// posture summaries while load-all holds every decoded record), and
// emits BENCH_diff.json for the CI bench-regression guard.
//
//   ./build/campaign_diff [--quick] [--json PATH] [--hosts N[,M...]]
//                         [--threads T]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "diff/diff.hpp"
#include "crypto/keycache.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "study/followup.hpp"
#include "util/date.hpp"
#include "obs/log.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kBaseSeed = 20200830;
constexpr std::uint64_t kFollowupSeed = 20220306;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

/// Base certificates: a small signed fleet, then per-host unique DERs by
/// perturbing trailing signature bytes — parseable (nothing in the diff
/// verifies signatures), unique thumbprints, zero per-host signing cost.
/// Without uniqueness the certificate matcher would have nothing to
/// re-identify: a fingerprint shared by a whole fleet names nobody.
std::vector<Bytes> make_cert_fleet() {
  KeyFactory keys(kBaseSeed, "");
  std::vector<Bytes> fleet;
  for (int i = 0; i < 24; ++i) {
    const RsaKeyPair kp = keys.get("diff-base-" + std::to_string(i), 512);
    CertificateSpec spec;
    spec.subject = {"diff device " + std::to_string(i),
                    i % 5 == 0 ? "Bachmann electronic" : "Diff Manufacturing", "DE"};
    spec.signature_hash = i % 3 == 0 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
    spec.serial = Bignum{static_cast<std::uint64_t>(2000 + i)};
    spec.not_before_days = days_from_civil({i % 2 ? 2017 : 2019, 5, 1});
    spec.not_after_days = spec.not_before_days + 3650;
    spec.application_uri = "urn:diff:device:" + std::to_string(i);
    fleet.push_back(x509_create(spec, kp.pub, kp.priv));
  }
  return fleet;
}

Bytes unique_cert(const std::vector<Bytes>& fleet, std::size_t i) {
  Bytes der = fleet[i % fleet.size()];
  for (std::size_t b = 0; b < 4; ++b) {
    der[der.size() - 1 - b] ^= static_cast<std::uint8_t>(i >> (8 * b));
  }
  return der;
}

/// Deterministic synthetic base host #i — the study's posture archetypes
/// (None-only, deprecated-max, strong-policy, anonymous) with an 80/20
/// unique/reused certificate split.
HostScanRecord make_host(std::size_t i, const std::vector<Bytes>& fleet) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x0a000000u + static_cast<std::uint32_t>(i));
  host.port = i % 13 == 0 ? 4841 : kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 48);
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.product_uri = "http://example.org/diff";
  host.application_name = "diff host " + std::to_string(i);
  host.software_version = "2." + std::to_string(i % 4) + ".0";
  switch (i % 5) {
    case 0: host.application_uri = "urn:bachmann:diff-" + std::to_string(i); break;
    case 1: host.application_uri = "urn:beckhoff:diff-" + std::to_string(i); break;
    default: host.application_uri = "urn:generic:opcua:diff-" + std::to_string(i); break;
  }

  const Bytes cert = i % 5 == 4 ? fleet[i % fleet.size()]  // §5.3 reuse cluster member
                                : unique_cert(fleet, i);
  auto add_endpoint = [&](MessageSecurityMode mode, SecurityPolicy policy, bool with_cert) {
    EndpointObservation ep;
    ep.url = "opc.tcp://diff" + std::to_string(i) + ":4840/";
    ep.mode = mode;
    ep.policy_uri = std::string(policy_info(policy).uri);
    ep.policy = policy;
    ep.policy_known = true;
    ep.token_types = i % 3 == 0 ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                                : std::vector<UserTokenType>{UserTokenType::Anonymous,
                                                             UserTokenType::UserName};
    if (with_cert) ep.certificate_der = cert;
    host.endpoints.push_back(std::move(ep));
  };
  switch (i % 4) {
    case 0:  // no security at all
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, false);
      break;
    case 1:  // deprecated maximum
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256, true);
      break;
    case 2:  // strong policy available
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
    default:  // mixed
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
  }

  host.channel = i % 11 == 10 ? ChannelOutcome::cert_rejected : ChannelOutcome::established;
  host.channel_policy = host.endpoints.back().policy;
  host.channel_mode = host.endpoints.back().mode;
  host.anonymous_offered = true;
  host.session = (i % 3 == 0 && host.channel == ChannelOutcome::established)
                     ? SessionOutcome::accessible
                     : SessionOutcome::auth_rejected;
  host.namespaces = {"http://opcfoundation.org/UA/"};
  host.bytes_sent = 40000 + (i % 1000);
  host.duration_seconds = 90.0 + static_cast<double>(i % 60);
  return host;
}

struct SizeResult {
  std::size_t hosts = 0;
  double write_seconds = 0;
  double evolve_seconds = 0;
  double stream1_seconds = 0;
  double streamN_seconds = 0;
  double loadall_seconds = 0;
  std::uint64_t rss_after_stream_kb = 0;
  std::uint64_t rss_after_loadall_kb = 0;
  std::uint64_t followup_hosts = 0;
  double matched_fraction = 0;
  bool identical = false;
  double hosts_per_s(double seconds) const {
    return static_cast<double>(hosts) / std::max(seconds, 1e-9);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_diff.json";
  std::vector<std::size_t> sizes;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p;) {
        sizes.push_back(static_cast<std::size_t>(std::atoll(p)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  if (sizes.empty()) {
    sizes = quick ? std::vector<std::size_t>{20000}
                  : std::vector<std::size_t>{100000, 1000000};
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 0) threads = static_cast<int>(hardware);

  std::string size_list;
  for (const auto s : sizes) size_list += " " + std::to_string(s);
  obs::logf(obs::LogLevel::info, "[bench] campaign diff: sizes%s, %d diff threads, %u cores",
            size_list.c_str(), threads, hardware);

  const std::vector<Bytes> fleet = make_cert_fleet();
  std::vector<SizeResult> results;

  for (const std::size_t hosts : sizes) {
    SizeResult result;
    result.hosts = hosts;
    const std::string base_path = "/tmp/opcua_diff_base_" + std::to_string(hosts) + ".bin";
    const std::string followup_path = "/tmp/opcua_diff_followup_" + std::to_string(hosts) + ".bin";

    // ---- base campaign: generator -> chunked v5 stream ------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: writing base campaign...", hosts);
    auto start = std::chrono::steady_clock::now();
    {
      SnapshotWriter writer(base_path, kBaseSeed);
      writer.set_campaign("bench-base-2020", days_from_civil({2020, 8, 30}));
      writer.begin_snapshot(0, days_from_civil({2020, 8, 30}));
      for (std::size_t i = 0; i < hosts; ++i) writer.add_host(make_host(i, fleet));
      writer.end_snapshot(hosts * 2, hosts + hosts / 2);
      writer.finish();
    }
    result.write_seconds = seconds_since(start);

    // ---- follow-up campaign: evolution model, streamed ------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: evolving follow-up campaign...", hosts);
    FollowupConfig config;
    config.seed = kFollowupSeed;
    config.campaign_label = "bench-followup-2022";
    // The bench's subject is matcher/diff throughput and output identity,
    // not minted-certificate conformance: 512-bit mint keys keep the
    // (timed, cold-cache) fleet generation out of the evolve numbers.
    config.mint_key_bits = 512;
    config.key_cache_path = "";
    start = std::chrono::steady_clock::now();
    {
      const SnapshotReader base(base_path, kBaseSeed);
      SnapshotWriter writer(followup_path, kFollowupSeed);
      run_followup_study_streamed(base, config, writer);
    }
    result.evolve_seconds = seconds_since(start);

    // ---- stream/1 and stream/T ------------------------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: streaming diff (1 thread)...", hosts);
    DiffOptions options;
    options.threads = 1;
    start = std::chrono::steady_clock::now();
    const CampaignDiff stream1 =
        diff_files(base_path, kBaseSeed, followup_path, kFollowupSeed, options);
    result.stream1_seconds = seconds_since(start);

    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: streaming diff (%d threads)...", hosts, threads);
    options.threads = threads;
    start = std::chrono::steady_clock::now();
    const CampaignDiff streamN =
        diff_files(base_path, kBaseSeed, followup_path, kFollowupSeed, options);
    result.streamN_seconds = seconds_since(start);
    result.rss_after_stream_kb = peak_rss_kb();

    // ---- load-all: both campaigns materialized --------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: load-all diff...", hosts);
    start = std::chrono::steady_clock::now();
    CampaignDiff loadall;
    {
      const std::vector<ScanSnapshot> base = SnapshotReader(base_path, kBaseSeed).load_all();
      const std::vector<ScanSnapshot> followup =
          SnapshotReader(followup_path, kFollowupSeed).load_all();
      loadall = diff_snapshots(base, followup, DiffOptions{});
    }
    result.loadall_seconds = seconds_since(start);
    result.rss_after_loadall_kb = peak_rss_kb();

    result.followup_hosts = stream1.followup_hosts;
    result.matched_fraction = stream1.base_hosts == 0
                                  ? 0
                                  : static_cast<double>(stream1.matched()) /
                                        static_cast<double>(stream1.base_hosts);
    // load-all inputs lose the campaign labels (ScanSnapshot carries
    // none), so the comparison is over every count.
    result.identical = stream1 == streamN && stream1.counts_equal(loadall);
    std::remove(base_path.c_str());
    std::remove(followup_path.c_str());
    results.push_back(result);
  }

  // ---- report -----------------------------------------------------------
  std::puts("Cross-campaign diff throughput (synthetic base + evolved follow-up)\n");
  TextTable table;
  table.set_header({"hosts", "evolve rec/s", "diff/1 rec/s",
                    "diff/" + std::to_string(threads) + " rec/s", "scaling", "load-all rec/s",
                    "matched", "identical"});
  for (const auto& r : results) {
    table.add_row({fmt_int(static_cast<long>(r.hosts)),
                   fmt_int(static_cast<long>(r.hosts_per_s(r.evolve_seconds))),
                   fmt_int(static_cast<long>(r.hosts_per_s(r.stream1_seconds))),
                   fmt_int(static_cast<long>(r.hosts_per_s(r.streamN_seconds))),
                   fmt_double(r.stream1_seconds / std::max(r.streamN_seconds, 1e-9), 2) + "x",
                   fmt_int(static_cast<long>(r.hosts_per_s(r.loadall_seconds))),
                   fmt_pct(r.matched_fraction), r.identical ? "yes" : "NO"});
  }
  std::fputs(table.str().c_str(), stdout);

  const SizeResult& largest = results.back();
  const double scaling = largest.stream1_seconds / std::max(largest.streamN_seconds, 1e-9);
  bool all_identical = true;
  for (const auto& r : results) all_identical &= r.identical;

  std::printf("\npeak-RSS proxy at %zu hosts: %llu MB after streaming diff, %llu MB after "
              "load-all diff\n",
              largest.hosts,
              static_cast<unsigned long long>(largest.rss_after_stream_kb / 1024),
              static_cast<unsigned long long>(largest.rss_after_loadall_kb / 1024));

  std::vector<ComparisonRow> rows = {
      {"diff/1 == diff/" + std::to_string(threads) + " == load-all (every count)", "equal",
       all_identical ? "equal" : "MISMATCH", all_identical},
      {"matched fraction at " + fmt_int(static_cast<long>(largest.hosts)) + " hosts",
       ">= 60%", fmt_pct(largest.matched_fraction), largest.matched_fraction >= 0.6},
  };
  if (hardware >= 4 && threads >= 4) {
    rows.push_back({"thread-scaling speedup on >= 4 cores", ">= 1.6x",
                    fmt_double(scaling, 2) + "x", scaling >= 1.6});
  }
  std::fputs(render_comparison("Campaign diff: streamed vs load-all", rows).c_str(), stdout);

  // ---- machine-readable trajectory --------------------------------------
  {
    JsonWriter json;
    json.begin_object()
        .field("quick", quick)
        .field("cores", static_cast<int>(hardware))
        .field("threads", threads)
        .key("sizes")
        .begin_array();
    for (const auto& r : results) {
      json.begin_object()
          .field("hosts", static_cast<std::uint64_t>(r.hosts))
          .field("followup_hosts", r.followup_hosts)
          .field("evolve_records_per_s", r.hosts_per_s(r.evolve_seconds))
          .field("diff1_records_per_s", r.hosts_per_s(r.stream1_seconds))
          .field("diffN_records_per_s", r.hosts_per_s(r.streamN_seconds))
          .field("thread_scaling", r.stream1_seconds / std::max(r.streamN_seconds, 1e-9))
          .field("loadall_records_per_s", r.hosts_per_s(r.loadall_seconds))
          .field("rss_after_stream_kb", r.rss_after_stream_kb)
          .field("rss_after_loadall_kb", r.rss_after_loadall_kb)
          .field("matched_fraction", r.matched_fraction)
          .field("outputs_identical", r.identical)
          .end_object();
    }
    json.end_array()
        .field("largest_hosts", static_cast<std::uint64_t>(largest.hosts))
        .field("largest_thread_scaling", scaling)
        .field("largest_matched_fraction", largest.matched_fraction)
        .field("all_outputs_identical", all_identical)
        .end_object();
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }

  // Output identity gates the exit code; throughput targets are
  // host-dependent and enforced by the CI baseline check instead.
  return all_identical && largest.matched_fraction >= 0.6 ? 0 : 1;
}
