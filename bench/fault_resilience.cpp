// Fault-injection resilience: retry recovery rate + determinism under a
// hostile network.
//
// The paper's scans ran against the real Internet, where SYN drops,
// connection resets and stalled responses are routine; the reproduction's
// netsim fault layer (netsim/faults.hpp) injects the same failure modes
// deterministically. This bench runs the synthetic weekly sweep under the
// hostile fault profile and measures what the resilient scan engine makes
// of it:
//  - recovery: the fraction of faulted hosts whose record still grades
//    `complete` after bounded retries (the CI floor pins >= 90%),
//  - determinism: the faulted snapshot must be identical across worker
//    thread counts AND shard layouts (fault + retry streams are keyed by
//    endpoint, not by scheduling),
//  - zero-cost when off: a campaign with a disabled fault plan attached
//    must produce records identical to one with no plan at all.
//
// Results are emitted to BENCH_fault.json for the CI bench-regression guard.
//
//   ./build/fault_resilience [opcua_hosts] [dummy_hosts] [shards] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "report/json.hpp"

#include "analysis/analysis.hpp"
#include "population/deploy.hpp"
#include "report/report.hpp"
#include "scanner/campaign.hpp"
#include "study/sharded.hpp"
#include "study/study.hpp"
#include "obs/log.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kSeed = 20200209;
constexpr std::uint64_t kFaultSeed = kSeed + 7;

PopulationPlan synthetic_plan(int hosts) {
  PopulationPlan plan;
  for (int i = 0; i < hosts; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "faults";
    host.manufacturer = i % 3 == 0 ? "Bachmann" : "other";
    host.application_uri = "urn:generic:opcua:fault-" + std::to_string(i);
    host.product_uri = "http://example.org/faults";
    host.application_name = "fault host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 6);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 1, 1});
    switch (i % 4) {
      case 0:  // anonymous + traversal: the longest host dialogues
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.outcome = PlannedOutcome::accessible;
        host.classification = PlannedClass::production;
        host.variable_count = 8;
        host.method_count = 2;
        host.writable_fraction = 0.25;
        break;
      case 1:
        host.modes = {MessageSecurityMode::None, MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::None, SecurityPolicy::Basic256Sha256};
        host.tokens = {UserTokenType::UserName};
        host.outcome = PlannedOutcome::auth_rejected;
        break;
      case 2:
        host.modes = {MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::Basic256Sha256};
        host.tokens = {UserTokenType::UserName};
        host.trust_all_client_certs = false;
        host.outcome = PlannedOutcome::channel_rejected;
        break;
      default:
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.reject_all_sessions = true;
        host.outcome = PlannedOutcome::auth_rejected;
        break;
    }
    plan.hosts.push_back(std::move(host));
  }
  return plan;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fault.json";
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(std::atoi(argv[i]));
    }
  }
  const int opcua_hosts = positional.size() > 0 ? positional[0] : 120;
  const int dummy_hosts = positional.size() > 1 ? positional[1] : 300;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int shards = positional.size() > 2 ? positional[2] : std::max(4, static_cast<int>(hardware));

  obs::logf(obs::LogLevel::info, "[bench] fault resilience: %d OPC UA hosts, %d dummies, %d shards, %u cores",
               opcua_hosts, dummy_hosts, shards, hardware);

  const PopulationPlan plan = synthetic_plan(opcua_hosts);
  DeployConfig deploy_config;
  deploy_config.seed = kSeed;
  deploy_config.dummy_hosts = dummy_hosts;
  deploy_config.fast_keys = true;
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  KeyFactory scanner_keys(kSeed, "");
  const ClientConfig scanner_identity = make_scanner_identity(kSeed, scanner_keys);

  auto run_sharded = [&](int shard_count, int threads, const FaultProfile& faults) {
    ShardedCampaignConfig config;
    config.campaign.seed = kSeed;
    config.campaign.grabber.client = scanner_identity;
    config.shards = shard_count;
    config.threads = threads;
    config.faults = faults;
    config.fault_seed = kFaultSeed;
    return run_sharded_campaign(deployer, 7, config);
  };

  // ---- zero-cost when off: disabled plan attached vs no plan at all.
  auto run_single = [&](bool attach_disabled_plan) {
    Network net;
    deployer.deploy_week(net, 7);
    if (attach_disabled_plan) {
      net.set_fault_plan(std::make_unique<FaultPlan>(kFaultSeed, FaultProfile{}));
    }
    CampaignConfig config;
    config.seed = kSeed;
    config.max_in_flight = 256;
    config.grabber.client = scanner_identity;
    Campaign campaign(config, net);
    return campaign.run(7);
  };
  obs::logf(obs::LogLevel::info, "[bench] fault-free baseline...");
  const bool fault_free_identical = run_single(false) == run_single(true);

  // ---- faulted sweeps: one per scheduling shape, all must agree.
  obs::logf(obs::LogLevel::info, "[bench] hostile sweep, 1 thread...");
  const auto start = std::chrono::steady_clock::now();
  const ScanSnapshot faulted = run_sharded(shards, 1, FaultProfile::hostile());
  const double faulted_seconds = seconds_since(start);
  obs::logf(obs::LogLevel::info, "[bench] hostile sweep, %u threads...", hardware);
  const bool deterministic_across_threads =
      faulted == run_sharded(shards, static_cast<int>(hardware), FaultProfile::hostile());
  obs::logf(obs::LogLevel::info, "[bench] hostile sweep, %d shards...", std::max(1, shards / 2));
  const bool deterministic_across_shard_layout =
      faulted == run_sharded(std::max(1, shards / 2), static_cast<int>(hardware),
                             FaultProfile::hostile());

  // ---- grade the faulted sweep via the analysis scan-quality section.
  const StudyAnalysis analysis = analyze_snapshots({faulted}, {});
  const ScanQualityStats& q = analysis.scan_quality;
  const double recovery_rate = q.recovery_rate;
  const bool recovery_ok = recovery_rate >= 0.9;

  std::puts("Fault-injection resilience (hostile profile, synthetic weekly sweep)\n");
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"hosts recorded", fmt_int(static_cast<long>(q.hosts))});
  table.add_row({"hosts that saw faults", fmt_int(static_cast<long>(q.faulted))});
  table.add_row({"recovered to complete", fmt_int(static_cast<long>(q.recovered))});
  table.add_row({"recovery rate", fmt_double(100.0 * recovery_rate, 1) + " %"});
  table.add_row({"graded complete", fmt_int(static_cast<long>(q.complete))});
  table.add_row({"graded truncated", fmt_int(static_cast<long>(q.truncated))});
  table.add_row({"graded degraded", fmt_int(static_cast<long>(q.degraded))});
  table.add_row({"retries spent", fmt_int(static_cast<long>(q.retries))});
  table.add_row({"fault events absorbed", fmt_int(static_cast<long>(q.fault_events))});
  table.add_row({"hostile sweep real time", fmt_double(faulted_seconds, 2) + " s"});
  std::fputs(table.str().c_str(), stdout);

  const std::vector<ComparisonRow> rows = {
      {"faulted snapshot identical across thread counts", "equal",
       deterministic_across_threads ? "equal" : "MISMATCH", deterministic_across_threads},
      {"faulted snapshot identical across shard layouts", "equal",
       deterministic_across_shard_layout ? "equal" : "MISMATCH",
       deterministic_across_shard_layout},
      {"disabled fault plan is a no-op", "equal",
       fault_free_identical ? "equal" : "MISMATCH", fault_free_identical},
      {"faulted hosts recovering to complete", ">= 90%",
       fmt_double(100.0 * recovery_rate, 1) + " %", recovery_ok},
  };
  std::fputs(render_comparison("Resilience vs the hostile fault profile", rows).c_str(), stdout);

  {
    JsonWriter json;
    json.begin_object()
        .field("opcua_hosts", opcua_hosts)
        .field("dummy_hosts", dummy_hosts)
        .field("shards", shards)
        .field("cores", static_cast<int>(hardware))
        .field("hosts", static_cast<double>(q.hosts))
        .field("faulted", static_cast<double>(q.faulted))
        .field("recovered", static_cast<double>(q.recovered))
        .field("recovery_rate", recovery_rate)
        .field("recovery_rate_at_least_090", recovery_ok)
        .field("complete", static_cast<double>(q.complete))
        .field("truncated", static_cast<double>(q.truncated))
        .field("degraded", static_cast<double>(q.degraded))
        .field("retries", static_cast<double>(q.retries))
        .field("fault_events", static_cast<double>(q.fault_events))
        .field("deterministic_across_threads", deterministic_across_threads)
        .field("deterministic_across_shard_layout", deterministic_across_shard_layout)
        .field("fault_free_identical", fault_free_identical)
        .field("faulted_seconds", faulted_seconds)
        .end_object();
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }
  return (deterministic_across_threads && deterministic_across_shard_layout &&
          fault_free_identical && recovery_ok)
             ? 0
             : 1;
}
