// Snapshot pipeline throughput: streaming chunked aggregation vs. the
// legacy load-everything path, at follow-up-study scale — plus the v6
// columnar format against the v5 row format.
//
// The paper's released dataset (~2k hosts/week) fits in RAM; the PAM 2022
// follow-up scanned an order of magnitude more, and the ROADMAP target is
// millions. This bench deploys a synthetic week of N hosts straight to a
// chunked v6 snapshot file (bounded memory while writing), then runs the
// full shared Aggregator over it three ways:
//   stream/1:  SnapshotReader chunks, single thread
//   stream/T:  same chunks fanned out to the thread pool, merged
//              deterministically in chunk order
//   load-all:  the pre-PR-3 path — whole dataset materialized, then
//              aggregated in memory
// It also writes the same week as v5 to measure what the v6 cert
// dictionary + column layout buys:
//   compression_ratio:  v5 bytes / v6 bytes for the identical records
//   posture_speedup:    cold posture pass (collect_postures, 1 thread) on
//                       the mmapped v6 columns vs v5 chunk record decode
// It verifies every path produces bit-identical figures/postures, reports
// records/s and a peak-RSS proxy (VmHWM before/after the load-all phase —
// streaming must not scale its footprint with N), and emits
// BENCH_snapshot.json (plus a v5-side BENCH_snapshot_v5.json artifact)
// for the CI bench-regression guard.
//
//   ./build/snapshot_pipeline [--quick] [--json PATH] [--hosts N[,M...]]
//                             [--threads T] [--keep FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis.hpp"
#include "crypto/keycache.hpp"
#include "report/json.hpp"
#include "report/report.hpp"
#include "scanner/snapshot_io.hpp"
#include "series/matcher.hpp"
#include "util/date.hpp"
#include "util/thread_pool.hpp"
#include "obs/log.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kSeed = 20220301;  // the follow-up campaign era

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// VmHWM from /proc/self/status in kB (0 where unavailable): the process
/// high-water RSS, a monotone proxy for "how much did this phase add".
std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

/// A fixed fleet of certificates shared across the population, so the
/// aggregation pass pays the real per-record costs (DER parse, SHA-1
/// thumbprint, conformance classification) and the reuse clustering has
/// clusters to find. 512-bit keys keep generation trivial.
std::vector<Bytes> make_cert_fleet() {
  KeyFactory keys(kSeed, "");
  std::vector<Bytes> fleet;
  for (int i = 0; i < 24; ++i) {
    const RsaKeyPair kp = keys.get("pipeline-" + std::to_string(i), 512);
    CertificateSpec spec;
    spec.subject = {"pipeline device " + std::to_string(i),
                    i % 5 == 0 ? "Bachmann electronic" : "Pipeline Manufacturing",
                    "DE"};
    spec.signature_hash = i % 3 == 0 ? HashAlgorithm::sha1 : HashAlgorithm::sha256;
    spec.serial = Bignum{static_cast<std::uint64_t>(1000 + i)};
    spec.not_before_days = days_from_civil({i % 2 ? 2016 : 2019, 3, 1});
    spec.not_after_days = spec.not_before_days + 3650;
    spec.application_uri = "urn:pipeline:device:" + std::to_string(i);
    fleet.push_back(x509_create(spec, kp.pub, kp.priv));
  }
  return fleet;
}

/// Deterministic synthetic host #i — a mix of the study's archetypes
/// (None-only, deprecated-max, strong-policy, anonymous/accessible,
/// discovery) heavy enough per record to resemble real scan output.
HostScanRecord make_host(std::size_t i, const std::vector<Bytes>& certs) {
  HostScanRecord host;
  host.ip = static_cast<Ipv4>(0x0a000000u + static_cast<std::uint32_t>(i));
  host.port = i % 13 == 0 ? 4841 : kOpcUaDefaultPort;
  host.asn = 64500 + static_cast<std::uint32_t>(i % 48);
  host.tcp_open = true;
  host.speaks_opcua = true;
  host.found_via_reference = i % 29 == 0;
  host.product_uri = "http://example.org/pipeline";
  host.application_name = "pipeline host " + std::to_string(i);
  host.software_version = "2." + std::to_string(i % 4) + ".0";

  if (i % 16 == 15) {  // discovery server
    host.application_uri = "urn:opcfoundation:ua:lds:pl-" + std::to_string(i);
    host.application_type = ApplicationType::DiscoveryServer;
    EndpointObservation ep;
    ep.url = "opc.tcp://10.0.0.0:4840/";
    ep.mode = MessageSecurityMode::None;
    ep.policy_uri = std::string(policy_info(SecurityPolicy::None).uri);
    ep.policy_known = true;
    ep.token_types = {UserTokenType::Anonymous};
    host.endpoints.push_back(std::move(ep));
    host.referenced_targets.emplace_back(host.ip + 1, 4841);
    return host;
  }

  switch (i % 5) {
    case 0: host.application_uri = "urn:bachmann:pl-" + std::to_string(i); break;
    case 1: host.application_uri = "urn:beckhoff:pl-" + std::to_string(i); break;
    case 2: host.application_uri = "urn:wago:pl-" + std::to_string(i); break;
    default: host.application_uri = "urn:generic:opcua:pl-" + std::to_string(i); break;
  }

  auto add_endpoint = [&](MessageSecurityMode mode, SecurityPolicy policy, bool with_cert) {
    EndpointObservation ep;
    ep.url = "opc.tcp://host" + std::to_string(i) + ":4840/";
    ep.mode = mode;
    ep.policy_uri = std::string(policy_info(policy).uri);
    ep.policy = policy;
    ep.policy_known = true;
    ep.token_types = i % 3 == 0 ? std::vector<UserTokenType>{UserTokenType::Anonymous}
                                : std::vector<UserTokenType>{UserTokenType::Anonymous,
                                                             UserTokenType::UserName};
    if (with_cert) ep.certificate_der = certs[i % certs.size()];
    host.endpoints.push_back(std::move(ep));
  };

  switch (i % 4) {
    case 0:  // no security at all
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, false);
      break;
    case 1:  // deprecated maximum
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::Sign, SecurityPolicy::Basic256, true);
      break;
    case 2:  // strong policy available
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
    default:  // mixed
      add_endpoint(MessageSecurityMode::None, SecurityPolicy::None, true);
      add_endpoint(MessageSecurityMode::SignAndEncrypt, SecurityPolicy::Basic256Sha256, true);
      break;
  }

  host.channel = i % 11 == 10 ? ChannelOutcome::cert_rejected : ChannelOutcome::established;
  host.channel_policy = host.endpoints.back().policy;
  host.channel_mode = host.endpoints.back().mode;
  host.anonymous_offered = true;
  const bool accessible = i % 3 == 0 && host.channel == ChannelOutcome::established;
  host.session = accessible ? SessionOutcome::accessible : SessionOutcome::auth_rejected;
  host.namespaces = {"http://opcfoundation.org/UA/"};
  if (accessible) {
    if (i % 6 == 0) host.namespaces.push_back("urn:plant:line" + std::to_string(i % 7));
    for (int n = 0; n < 12; ++n) {
      NodeObservation node;
      node.browse_name = "var" + std::to_string(n);
      node.node_class = n < 10 ? NodeClass::Variable : NodeClass::Method;
      node.readable = true;
      node.writable = n % 4 == 0;
      node.executable = node.node_class == NodeClass::Method && i % 2 == 0;
      host.nodes.push_back(std::move(node));
    }
  }
  host.bytes_sent = 40000 + (i % 1000);
  host.duration_seconds = 90.0 + static_cast<double>(i % 60);
  return host;
}

struct SizeResult {
  std::size_t hosts = 0;
  std::uint64_t file_bytes = 0;     // v6 (the default format)
  std::uint64_t file_bytes_v5 = 0;  // same records, row format
  double write_seconds = 0;
  double write_v5_seconds = 0;
  double stream1_seconds = 0;
  double streamN_seconds = 0;
  double legacy_seconds = 0;
  double posture_v5_seconds = 0;  // collect_postures, 1 thread, v5 decode
  double posture_v6_seconds = 0;  // collect_postures, 1 thread, v6 columns
  std::uint64_t rss_after_stream_kb = 0;
  std::uint64_t rss_after_legacy_kb = 0;
  bool identical = false;
  double records_per_s(double seconds) const {
    return static_cast<double>(hosts) / std::max(seconds, 1e-9);
  }
  double compression_ratio() const {
    return static_cast<double>(file_bytes_v5) / std::max<double>(1, static_cast<double>(file_bytes));
  }
  double posture_speedup() const {
    return posture_v5_seconds / std::max(posture_v6_seconds, 1e-9);
  }
  double bytes_per_host(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / std::max<double>(1, static_cast<double>(hosts));
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_snapshot.json";
  std::string keep_path;
  std::vector<std::size_t> sizes;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--keep") == 0 && i + 1 < argc) {
      keep_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p;) {
        sizes.push_back(static_cast<std::size_t>(std::atoll(p)));
        while (*p && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  if (sizes.empty()) {
    sizes = quick ? std::vector<std::size_t>{20000}
                  : std::vector<std::size_t>{100000, 1000000};
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 0) threads = static_cast<int>(hardware);

  std::string size_list;
  for (const auto s : sizes) size_list += " " + std::to_string(s);
  obs::logf(obs::LogLevel::info, "[bench] snapshot pipeline: sizes%s, %d aggregation threads, %u cores",
            size_list.c_str(), threads, hardware);

  const std::vector<Bytes> certs = make_cert_fleet();
  std::vector<SizeResult> results;

  for (const std::size_t hosts : sizes) {
    SizeResult result;
    result.hosts = hosts;
    const std::string path =
        keep_path.empty() ? "/tmp/opcua_pipeline_" + std::to_string(hosts) + ".bin" : keep_path;

    // ---- write: generator -> chunked v6 stream --------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: writing chunked v6 snapshot...", hosts);
    auto start = std::chrono::steady_clock::now();
    {
      SnapshotWriter writer(path, kSeed);
      writer.begin_snapshot(0, days_from_civil({2022, 3, 6}));
      for (std::size_t i = 0; i < hosts; ++i) writer.add_host(make_host(i, certs));
      writer.end_snapshot(hosts * 2, hosts + hosts / 2);
      writer.finish();
    }
    result.write_seconds = seconds_since(start);
    {
      std::ifstream in(path, std::ios::binary | std::ios::ate);
      result.file_bytes = static_cast<std::uint64_t>(in.tellg());
    }

    // ---- write the identical week as v5 for the format comparison -------
    const std::string path_v5 = path + ".v5";
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: writing v5 row-format snapshot...", hosts);
    start = std::chrono::steady_clock::now();
    {
      SnapshotWriter writer(path_v5, kSeed, SnapshotWriter::kDefaultChunkRecords, 5);
      writer.begin_snapshot(0, days_from_civil({2022, 3, 6}));
      for (std::size_t i = 0; i < hosts; ++i) writer.add_host(make_host(i, certs));
      writer.end_snapshot(hosts * 2, hosts + hosts / 2);
      writer.finish();
    }
    result.write_v5_seconds = seconds_since(start);
    {
      std::ifstream in(path_v5, std::ios::binary | std::ios::ate);
      result.file_bytes_v5 = static_cast<std::uint64_t>(in.tellg());
    }

    // ---- stream/1 and stream/T ------------------------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: streaming aggregation (1 thread)...", hosts);
    AnalysisOptions options;
    options.threads = 1;
    start = std::chrono::steady_clock::now();
    const StudyAnalysis stream1 = analyze_file(path, kSeed, options);
    result.stream1_seconds = seconds_since(start);

    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: streaming aggregation (%d threads)...", hosts,
                 threads);
    options.threads = threads;
    start = std::chrono::steady_clock::now();
    const StudyAnalysis streamN = analyze_file(path, kSeed, options);
    result.streamN_seconds = seconds_since(start);
    result.rss_after_stream_kb = peak_rss_kb();

    // ---- legacy load-all ------------------------------------------------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: legacy load-all aggregation...", hosts);
    start = std::chrono::steady_clock::now();
    StudyAnalysis legacy;
    {
      const SnapshotReader reader(path, kSeed);
      const std::vector<ScanSnapshot> all = reader.load_all();  // the old world
      legacy = analyze_snapshots(all, AnalysisOptions{});
    }
    result.legacy_seconds = seconds_since(start);
    result.rss_after_legacy_kb = peak_rss_kb();

    // ---- cold posture pass: v6 mmapped columns vs v5 record decode ------
    obs::logf(obs::LogLevel::info, "[bench] %zu hosts: posture pass, v5 decode vs v6 columns...", hosts);
    std::vector<HostPosture> postures_v5, postures_v6;
    {
      ThreadPool pool(1);
      const SnapshotReader reader_v5(path_v5, kSeed);
      const ReaderRecordSource source_v5(reader_v5);
      start = std::chrono::steady_clock::now();
      postures_v5 = collect_postures(source_v5, pool);
      result.posture_v5_seconds = seconds_since(start);

      const SnapshotReader reader_v6(path, kSeed);
      const ReaderRecordSource source_v6(reader_v6);
      start = std::chrono::steady_clock::now();
      postures_v6 = collect_postures(source_v6, pool);
      result.posture_v6_seconds = seconds_since(start);
    }

    result.identical = stream1.figures_equal(streamN) && stream1.figures_equal(legacy) &&
                       postures_v5 == postures_v6;
    if (keep_path.empty()) {
      std::remove(path.c_str());
      std::remove(path_v5.c_str());
    }
    results.push_back(result);
  }

  // ---- report -----------------------------------------------------------
  std::puts("Snapshot pipeline throughput (synthetic follow-up-scale measurement)\n");
  TextTable table;
  table.set_header({"hosts", "v6 file", "v5 file", "ratio", "write rec/s", "stream/1 rec/s",
                    "stream/" + std::to_string(threads) + " rec/s", "scaling", "load-all rec/s",
                    "posture v5->v6", "identical"});
  for (const auto& r : results) {
    table.add_row({fmt_int(static_cast<long>(r.hosts)),
                   fmt_double(static_cast<double>(r.file_bytes) / (1024.0 * 1024.0), 1) + " MB",
                   fmt_double(static_cast<double>(r.file_bytes_v5) / (1024.0 * 1024.0), 1) + " MB",
                   fmt_double(r.compression_ratio(), 2) + "x",
                   fmt_int(static_cast<long>(r.records_per_s(r.write_seconds))),
                   fmt_int(static_cast<long>(r.records_per_s(r.stream1_seconds))),
                   fmt_int(static_cast<long>(r.records_per_s(r.streamN_seconds))),
                   fmt_double(r.stream1_seconds / std::max(r.streamN_seconds, 1e-9), 2) + "x",
                   fmt_int(static_cast<long>(r.records_per_s(r.legacy_seconds))),
                   fmt_double(r.posture_speedup(), 2) + "x",
                   r.identical ? "yes" : "NO"});
  }
  std::fputs(table.str().c_str(), stdout);

  const SizeResult& largest = results.back();
  const double scaling = largest.stream1_seconds / std::max(largest.streamN_seconds, 1e-9);
  const double stream_vs_legacy =
      largest.legacy_seconds / std::max(largest.streamN_seconds, 1e-9);
  bool all_identical = true;
  for (const auto& r : results) all_identical &= r.identical;

  std::printf("\npeak-RSS proxy at %zu hosts: %llu MB after streaming, %llu MB after load-all "
              "(file: %llu MB)\n",
              largest.hosts,
              static_cast<unsigned long long>(largest.rss_after_stream_kb / 1024),
              static_cast<unsigned long long>(largest.rss_after_legacy_kb / 1024),
              static_cast<unsigned long long>(largest.file_bytes / (1024 * 1024)));

  std::vector<ComparisonRow> rows = {
      {"stream/1 == stream/" + std::to_string(threads) + " == load-all (figure stats), "
       "v5 postures == v6 postures",
       "equal", all_identical ? "equal" : "MISMATCH", all_identical},
      {"v6 dictionary compression at " + fmt_int(static_cast<long>(largest.hosts)) + " hosts",
       ">= 3x", fmt_double(largest.compression_ratio(), 2) + "x",
       largest.compression_ratio() >= 3.0},
      {"v6 columnar posture pass at " + fmt_int(static_cast<long>(largest.hosts)) + " hosts",
       ">= 2x", fmt_double(largest.posture_speedup(), 2) + "x",
       largest.posture_speedup() >= 2.0},
  };
  if (hardware >= 4 && threads >= 4) {
    rows.push_back({"thread-scaling speedup at " + fmt_int(static_cast<long>(largest.hosts)) +
                        " hosts on >= 4 cores",
                    ">= 4x", fmt_double(scaling, 2) + "x", scaling >= 4.0});
  } else {
    std::printf("(only %u core%s / %d threads available: the >= 4x thread-scaling criterion "
                "needs >= 4)\n",
                hardware, hardware == 1 ? "" : "s", threads);
  }
  std::fputs(render_comparison("Snapshot pipeline vs legacy load-all", rows).c_str(), stdout);

  // ---- machine-readable trajectory --------------------------------------
  {
    JsonWriter json;
    json.begin_object()
        .field("quick", quick)
        .field("cores", static_cast<int>(hardware))
        .field("threads", threads)
        .key("sizes")
        .begin_array();
    for (const auto& r : results) {
      json.begin_object()
          .field("hosts", static_cast<std::uint64_t>(r.hosts))
          .field("file_mb", static_cast<double>(r.file_bytes) / (1024.0 * 1024.0))
          .field("file_mb_v5", static_cast<double>(r.file_bytes_v5) / (1024.0 * 1024.0))
          .field("bytes_per_host_v6", r.bytes_per_host(r.file_bytes))
          .field("bytes_per_host_v5", r.bytes_per_host(r.file_bytes_v5))
          .field("compression_ratio", r.compression_ratio())
          .field("write_records_per_s", r.records_per_s(r.write_seconds))
          .field("write_v5_records_per_s", r.records_per_s(r.write_v5_seconds))
          .field("stream1_records_per_s", r.records_per_s(r.stream1_seconds))
          .field("streamN_records_per_s", r.records_per_s(r.streamN_seconds))
          .field("thread_scaling", r.stream1_seconds / std::max(r.streamN_seconds, 1e-9))
          .field("legacy_records_per_s", r.records_per_s(r.legacy_seconds))
          .field("posture_v5_records_per_s", r.records_per_s(r.posture_v5_seconds))
          .field("posture_v6_records_per_s", r.records_per_s(r.posture_v6_seconds))
          .field("posture_speedup", r.posture_speedup())
          .field("rss_after_stream_kb", r.rss_after_stream_kb)
          .field("rss_after_legacy_kb", r.rss_after_legacy_kb)
          .field("outputs_identical", r.identical)
          .end_object();
    }
    json.end_array()
        .field("largest_hosts", static_cast<std::uint64_t>(largest.hosts))
        .field("largest_thread_scaling", scaling)
        .field("largest_stream_vs_legacy", stream_vs_legacy)
        .field("largest_compression_ratio", largest.compression_ratio())
        .field("largest_posture_speedup", largest.posture_speedup())
        .field("all_outputs_identical", all_identical)
        .end_object();
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }

  // v5-side artifact: the row-format numbers alone, so CI uploads carry a
  // directly comparable v5 vs v6 pair per run.
  {
    std::string v5_json_path = json_path;
    const std::size_t dot = v5_json_path.rfind(".json");
    if (dot != std::string::npos) {
      v5_json_path.replace(dot, 5, "_v5.json");
    } else {
      v5_json_path += "_v5";
    }
    JsonWriter json;
    json.begin_object().field("quick", quick).key("sizes").begin_array();
    for (const auto& r : results) {
      json.begin_object()
          .field("hosts", static_cast<std::uint64_t>(r.hosts))
          .field("file_mb", static_cast<double>(r.file_bytes_v5) / (1024.0 * 1024.0))
          .field("bytes_per_host", r.bytes_per_host(r.file_bytes_v5))
          .field("write_records_per_s", r.records_per_s(r.write_v5_seconds))
          .field("posture_records_per_s", r.records_per_s(r.posture_v5_seconds))
          .end_object();
    }
    json.end_array().end_object();
    std::ofstream out(v5_json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", v5_json_path.c_str());
  }

  // Output identity gates the exit code; throughput/scaling targets are
  // host-dependent and enforced by the CI baseline check instead.
  return all_identical ? 0 : 1;
}
