// Ablation (§A.2): scanner politeness — the 500 ms inter-request pacing and
// the 60 min / 50 MB per-host caps. With pacing on, per-host connection
// times reproduce the paper's reported scale (avg 110 s); with pacing off,
// the same traversals finish orders of magnitude faster, which is exactly
// the behaviour the guidelines forbid against resource-constrained devices.
//
// A second ablation covers the *campaign* dimension: pacing politely is only
// compatible with the paper's 24 h scan window because thousands of hosts
// are in flight at once — scanned lock-step, the same polite sweep would
// need days of scan time. The interleaved engine reproduces that window
// compression.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"
#include "obs/log.hpp"

using namespace opcua_study;

namespace {

struct TrafficStats {
  double avg_duration = 0, max_duration = 0, min_duration = 1e18;
  double avg_bytes = 0;
  std::uint64_t max_bytes = 0;
  int hosts = 0;
};

void add_host(TrafficStats& stats, const HostScanRecord& host) {
  ++stats.hosts;
  stats.avg_duration += host.duration_seconds;
  stats.max_duration = std::max(stats.max_duration, host.duration_seconds);
  stats.min_duration = std::min(stats.min_duration, host.duration_seconds);
  stats.avg_bytes += static_cast<double>(host.bytes_sent);
  stats.max_bytes = std::max(stats.max_bytes, host.bytes_sent);
}

TrafficStats traffic_of(const ScanSnapshot& snapshot) {
  TrafficStats stats;
  for (const auto& host : snapshot.hosts) add_host(stats, host);
  if (stats.hosts > 0) {
    stats.avg_duration /= stats.hosts;
    stats.avg_bytes /= stats.hosts;
  }
  return stats;
}

/// Traffic profile of the recorded final measurement, streamed from the
/// snapshot cache without materializing the dataset.
TrafficStats recorded_final_traffic() {
  const SnapshotReader reader(bench::ensure_snapshot_cache(), bench::kStudySeed);
  TrafficStats stats;
  const std::size_t final_week = reader.snapshots().size() - 1;
  for (std::size_t c = 0; c < reader.chunks().size(); ++c) {
    if (reader.chunks()[c].snapshot_ordinal != final_week) continue;
    for (const auto& host : reader.read_chunk(c)) add_host(stats, host);
  }
  if (stats.hosts > 0) {
    stats.avg_duration /= stats.hosts;
    stats.avg_bytes /= stats.hosts;
  }
  return stats;
}

}  // namespace

int main() {
  const TrafficStats polite = recorded_final_traffic();

  StudyConfig config;
  config.seed = bench::kStudySeed;
  // One fresh week-7 world + campaign per ablation; `mutate` tweaks the
  // campaign config, the result carries the snapshot and the simulated
  // campaign window in hours.
  const auto run_fresh_campaign = [&config](auto&& mutate) {
    const PopulationPlan plan = build_population_plan(config.seed);
    DeployConfig deploy_config;
    deploy_config.seed = config.seed;
    deploy_config.dummy_hosts = config.dummy_hosts;
    Deployer deployer(plan, deploy_config);
    Network net;
    deployer.deploy_week(net, 7);
    KeyFactory keys(config.seed, config.key_cache_path);
    CampaignConfig campaign_config;
    campaign_config.seed = config.seed;
    campaign_config.exclusions = deployer.exclusion_list();
    campaign_config.grabber.client = make_scanner_identity(config.seed, keys);
    mutate(campaign_config);
    Campaign campaign(campaign_config, net);
    ScanSnapshot snapshot = campaign.run(7);
    return std::make_pair(std::move(snapshot),
                          static_cast<double>(net.clock().now_us()) / 3.6e9);
  };

  obs::logf(obs::LogLevel::info, "[bench] running the pacing-off ablation scan...");
  // Same world, pacing disabled (ablation: what the guidelines prevent).
  const ScanSnapshot impolite =
      run_fresh_campaign([](CampaignConfig& c) { c.grabber.budget.inter_request_ms = 0; }).first;
  const TrafficStats rude = traffic_of(impolite);

  std::puts("Ablation: scanner politeness (500 ms pacing + 60 min / 50 MB caps)\n");
  TextTable table;
  table.set_header({"metric", "pacing on (paper setup)", "pacing off (ablation)"});
  table.add_row({"avg connection time", fmt_double(polite.avg_duration, 1) + " s",
                 fmt_double(rude.avg_duration, 2) + " s"});
  table.add_row({"max connection time", fmt_double(polite.max_duration, 1) + " s",
                 fmt_double(rude.max_duration, 2) + " s"});
  table.add_row({"min connection time", fmt_double(polite.min_duration * 1000, 1) + " ms",
                 fmt_double(rude.min_duration * 1000, 2) + " ms"});
  table.add_row({"avg outgoing traffic", fmt_double(polite.avg_bytes / 1000.0, 1) + " kB",
                 fmt_double(rude.avg_bytes / 1000.0, 1) + " kB"});
  table.add_row({"max outgoing traffic", fmt_double(polite.max_bytes / 1e6, 2) + " MB",
                 fmt_double(static_cast<double>(rude.max_bytes) / 1e6, 2) + " MB"});
  std::fputs(table.str().c_str(), stdout);

  std::vector<ComparisonRow> rows = {
      {"avg connection time (paper: 110 s)", "~110 s", fmt_double(polite.avg_duration, 1) + " s",
       polite.avg_duration > 30 && polite.avg_duration < 250},
      {"max within 60-min cap (paper max: 5393 s)", "<= 3700 s",
       fmt_double(polite.max_duration, 1) + " s", polite.max_duration <= 3700},
      {"traffic within 50 MB cap", "<= 50 MB",
       fmt_double(static_cast<double>(polite.max_bytes) / 1e6, 2) + " MB",
       polite.max_bytes <= 50u * 1000 * 1000},
      // With pacing off, the per-request path RTT (10-150 ms) becomes the
      // floor, so the politeness overhead is bounded by ~500ms/RTT ≈ 5-10x.
      {"pacing dominates duration", ">5x speedup when off",
       fmt_double(polite.avg_duration / std::max(rude.avg_duration, 1e-9), 1) + "x",
       polite.avg_duration / std::max(rude.avg_duration, 1e-9) > 5},
  };
  std::fputs(render_comparison("Scanner ethics (§A.2) vs paper", rows).c_str(), stdout);

  // ---- campaign scheduling ablation: lock-step vs interleaved scan window.
  obs::logf(obs::LogLevel::info, "[bench] measuring the interleaved scan window (fresh campaign)...");
  // Pacing on, default max_in_flight = 256.
  const double interleaved_hours = run_fresh_campaign([](CampaignConfig&) {}).second;
  // Scanned one host at a time, the polite sweep needs at least the sum of
  // the per-host connection times.
  const double lock_step_hours = polite.avg_duration * polite.hosts / 3600.0;

  std::puts("\nAblation: campaign scheduling (lock-step vs 256 hosts in flight)\n");
  TextTable window;
  window.set_header({"schedule", "simulated scan window"});
  window.add_row({"lock-step, one host at a time (lower bound)",
                  fmt_double(lock_step_hours, 1) + " h"});
  window.add_row({"interleaved, 256 in flight", fmt_double(interleaved_hours, 1) + " h"});
  std::fputs(window.str().c_str(), stdout);

  std::vector<ComparisonRow> window_rows = {
      {"polite weekly sweep fits the paper's scan window", "<= 24 h",
       fmt_double(interleaved_hours, 1) + " h", interleaved_hours <= 24.0},
      // Lock-step, the polite sweep consumes nearly the whole window for
      // ~1/20 of the paper's server population — interleaving is what makes
      // polite Internet-wide scanning feasible at all.
      {"interleaving compresses the scan window", "> 20x",
       fmt_double(lock_step_hours / std::max(interleaved_hours, 1e-9), 0) + "x",
       lock_step_hours > 20 * interleaved_hours},
  };
  std::fputs(render_comparison("Scan window (§A.2) vs paper", window_rows).c_str(), stdout);
  return 0;
}
