// The retired 32-bit-limb bignum core, embedded verbatim as the baseline
// for bench/crypto_throughput.cpp.
//
// This is the arithmetic the repo shipped before the 64-bit rewrite:
// schoolbook multiplication only, Knuth-D division in base 2^32, a CIOS
// Montgomery ladder (bit-at-a-time) for modexp, and per-prime trial
// division. Keeping it compilable gives the bench an honest old-vs-new
// ratio — and lets it assert that both cores generate bit-identical
// primes from the same Rng stream (the determinism invariant the 64-bit
// core promises). Bench-only: never link this into the library.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace opcua_study::legacy32 {

class Bignum {
 public:
  Bignum() = default;
  Bignum(std::uint64_t v) {  // NOLINT(google-explicit-constructor)
    if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
  }

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  std::size_t bit_length() const {
    if (limbs_.empty()) return 0;
    std::uint32_t top = limbs_.back();
    std::size_t bits = (limbs_.size() - 1) * 32;
    while (top) {
      ++bits;
      top >>= 1;
    }
    return bits;
  }

  bool bit(std::size_t i) const {
    const std::size_t limb = i / 32;
    if (limb >= limbs_.size()) return false;
    return (limbs_[limb] >> (i % 32)) & 1;
  }

  void set_bit(std::size_t i) {
    const std::size_t limb = i / 32;
    if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
    limbs_[limb] |= std::uint32_t{1} << (i % 32);
  }

  Bytes to_bytes_be() const {
    const std::size_t nbytes = (bit_length() + 7) / 8;
    Bytes out(nbytes, 0);
    for (std::size_t i = 0; i < nbytes; ++i) {
      const std::size_t bit_pos = i * 8;
      out[nbytes - 1 - i] = static_cast<std::uint8_t>(limbs_[bit_pos / 32] >> (bit_pos % 32));
    }
    return out;
  }

  std::string to_hex() const {
    if (is_zero()) return "0";
    auto bytes = to_bytes_be();
    std::string h = opcua_study::to_hex(bytes);
    if (h.size() > 1 && h[0] == '0') h.erase(h.begin());
    return h;
  }

  int compare(const Bignum& other) const {
    if (limbs_.size() != other.limbs_.size()) {
      return limbs_.size() < other.limbs_.size() ? -1 : 1;
    }
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
    return 0;
  }
  bool operator==(const Bignum& o) const { return compare(o) == 0; }
  bool operator!=(const Bignum& o) const { return compare(o) != 0; }
  bool operator<(const Bignum& o) const { return compare(o) < 0; }
  bool operator<=(const Bignum& o) const { return compare(o) <= 0; }
  bool operator>(const Bignum& o) const { return compare(o) > 0; }
  bool operator>=(const Bignum& o) const { return compare(o) >= 0; }

  Bignum operator+(const Bignum& other) const {
    Bignum out;
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    out.limbs_.resize(n + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t sum = carry;
      if (i < limbs_.size()) sum += limbs_[i];
      if (i < other.limbs_.size()) sum += other.limbs_[i];
      out.limbs_[i] = static_cast<std::uint32_t>(sum);
      carry = sum >> 32;
    }
    out.limbs_[n] = static_cast<std::uint32_t>(carry);
    out.trim();
    return out;
  }

  Bignum operator-(const Bignum& other) const {
    if (*this < other) throw std::domain_error("legacy Bignum underflow");
    Bignum out;
    out.limbs_.resize(limbs_.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      std::int64_t diff =
          static_cast<std::int64_t>(limbs_[i]) - borrow -
          (i < other.limbs_.size() ? static_cast<std::int64_t>(other.limbs_[i]) : 0);
      if (diff < 0) {
        diff += (std::int64_t{1} << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out.limbs_[i] = static_cast<std::uint32_t>(diff);
    }
    out.trim();
    return out;
  }

  Bignum operator*(const Bignum& other) const {
    if (is_zero() || other.is_zero()) return Bignum{};
    Bignum out;
    out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      std::uint64_t carry = 0;
      const std::uint64_t a = limbs_[i];
      for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
        std::uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
        out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
        carry = cur >> 32;
      }
      std::size_t k = i + other.limbs_.size();
      while (carry) {
        std::uint64_t cur = out.limbs_[k] + carry;
        out.limbs_[k] = static_cast<std::uint32_t>(cur);
        carry = cur >> 32;
        ++k;
      }
    }
    out.trim();
    return out;
  }

  Bignum operator<<(std::size_t bits) const {
    if (is_zero()) return Bignum{};
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
      out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
      out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
    }
    out.trim();
    return out;
  }

  Bignum operator>>(std::size_t bits) const {
    const std::size_t limb_shift = bits / 32;
    if (limb_shift >= limbs_.size()) return Bignum{};
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
      std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
      if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
        v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
      }
      out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
  }

  struct DivMod;  // {quotient, remainder}; defined after the class
  DivMod divmod(const Bignum& divisor) const;

  Bignum operator/(const Bignum& d) const;
  Bignum operator%(const Bignum& d) const;
  std::uint32_t mod_u32(std::uint32_t d) const {
    if (d == 0) throw std::domain_error("mod by zero");
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      rem = ((rem << 32) | limbs_[i]) % d;
    }
    return static_cast<std::uint32_t>(rem);
  }

  static Bignum gcd(Bignum a, Bignum b) {
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    std::size_t shift = 0;
    while (!a.is_odd() && !b.is_odd()) {
      a = a >> 1;
      b = b >> 1;
      ++shift;
    }
    while (!a.is_odd()) a = a >> 1;
    while (!b.is_zero()) {
      while (!b.is_odd()) b = b >> 1;
      if (a > b) std::swap(a, b);
      b = b - a;
    }
    return a << shift;
  }

  static Bignum random_bits(Rng& rng, std::size_t bits) {
    Bignum out;
    out.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next());
    const std::size_t excess = out.limbs_.size() * 32 - bits;
    if (excess) out.limbs_.back() &= (~std::uint32_t{0}) >> excess;
    out.trim();
    return out;
  }

  static Bignum random_below(Rng& rng, const Bignum& bound) {
    if (bound.is_zero()) throw std::domain_error("random_below(0)");
    const std::size_t bits = bound.bit_length();
    for (;;) {
      Bignum candidate = random_bits(rng, bits);
      if (candidate < bound) return candidate;
    }
  }

  static bool is_probable_prime(const Bignum& n, int rounds, Rng& rng);
  static Bignum generate_prime(Rng& rng, std::size_t bits, int mr_rounds = 12);

 private:
  friend class Montgomery;
  void trim() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  }
  std::vector<std::uint32_t> limbs_;
};


struct Bignum::DivMod {
  Bignum quotient;
  Bignum remainder;
};

inline Bignum::DivMod Bignum::divmod(const Bignum& divisor) const {
  // Knuth TAOCP vol. 2 Algorithm D, base 2^32 — the old fast path.
  if (divisor.is_zero()) throw std::domain_error("legacy Bignum division by zero");
  if (*this < divisor) return {Bignum{}, *this};
  const std::size_t n = divisor.limbs_.size();
  if (n == 1) {
    const std::uint32_t d = divisor.limbs_[0];
    Bignum q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, Bignum{rem}};
  }

  const std::size_t m = limbs_.size();
  const int s = std::countl_zero(divisor.limbs_.back());
  std::vector<std::uint32_t> vn(n);
  for (std::size_t i = n; i-- > 0;) {
    std::uint32_t v = divisor.limbs_[i] << s;
    if (s && i > 0) v |= divisor.limbs_[i - 1] >> (32 - s);
    vn[i] = v;
  }
  std::vector<std::uint32_t> un(m + 1, 0);
  un[m] = s ? (limbs_[m - 1] >> (32 - s)) : 0;
  for (std::size_t i = m; i-- > 0;) {
    std::uint32_t v = limbs_[i] << s;
    if (s && i > 0) v |= limbs_[i - 1] >> (32 - s);
    un[i] = v;
  }

  Bignum q;
  q.limbs_.assign(m - n + 1, 0);
  constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
  for (std::size_t j = m - n + 1; j-- > 0;) {
    const std::uint64_t num = (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= kBase || qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    std::int64_t k = 0;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i];
      t = static_cast<std::int64_t>(un[i + j]) - k - static_cast<std::int64_t>(p & 0xffffffffULL);
      un[i + j] = static_cast<std::uint32_t>(t);
      k = static_cast<std::int64_t>(p >> 32) - (t >> 32);
    }
    t = static_cast<std::int64_t>(un[j + n]) - k;
    un[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
    if (t < 0) {
      --q.limbs_[j];
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry;
        un[i + j] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
      }
      un[j + n] += static_cast<std::uint32_t>(carry);
    }
  }
  q.trim();
  Bignum r;
  r.limbs_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = un[i] >> s;
    if (s && i + 1 < n + 1) v |= static_cast<std::uint64_t>(un[i + 1]) << (32 - s);
    r.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  r.trim();
  return {q, r};
}

inline Bignum Bignum::operator/(const Bignum& d) const { return divmod(d).quotient; }
inline Bignum Bignum::operator%(const Bignum& d) const { return divmod(d).remainder; }

// Montgomery context with the old bit-at-a-time ladder exponentiation.
class Montgomery {
 public:
  explicit Montgomery(const Bignum& odd_modulus) : n_(odd_modulus) {
    if (!n_.is_odd()) throw std::domain_error("Montgomery modulus must be odd");
    k_ = n_.limbs_.size();
    const std::uint32_t n0 = n_.limbs_[0];
    std::uint32_t x = n0;
    for (int i = 0; i < 5; ++i) x *= 2 - n0 * x;
    n0_inv_ = ~x + 1;
    Bignum r = Bignum{1} << (32 * k_);
    rr_ = (r % n_);
    rr_ = (rr_ * rr_) % n_;
  }

  Bignum mul(const Bignum& a_mont, const Bignum& b_mont) const {
    std::vector<std::uint32_t> t(k_ + 2, 0);
    const auto& a = a_mont.limbs_;
    const auto& b = b_mont.limbs_;
    const auto& n = n_.limbs_;
    for (std::size_t i = 0; i < k_; ++i) {
      const std::uint64_t ai = i < a.size() ? a[i] : 0;
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < k_; ++j) {
        const std::uint64_t bj = j < b.size() ? b[j] : 0;
        const std::uint64_t cur = t[j] + ai * bj + carry;
        t[j] = static_cast<std::uint32_t>(cur);
        carry = cur >> 32;
      }
      std::uint64_t cur = t[k_] + carry;
      t[k_] = static_cast<std::uint32_t>(cur);
      t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

      const std::uint32_t m = t[0] * n0_inv_;
      carry = (static_cast<std::uint64_t>(t[0]) + static_cast<std::uint64_t>(m) * n[0]) >> 32;
      for (std::size_t j = 1; j < k_; ++j) {
        const std::uint64_t cur2 = t[j] + static_cast<std::uint64_t>(m) * n[j] + carry;
        t[j - 1] = static_cast<std::uint32_t>(cur2);
        carry = cur2 >> 32;
      }
      cur = t[k_] + carry;
      t[k_ - 1] = static_cast<std::uint32_t>(cur);
      t[k_] = t[k_ + 1] + static_cast<std::uint32_t>(cur >> 32);
      t[k_ + 1] = 0;
    }
    Bignum out;
    out.limbs_.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_ + 1));
    out.trim();
    if (out >= n_) out = out - n_;
    return out;
  }

  Bignum to_mont(const Bignum& x) const { return mul(x % n_, rr_); }
  Bignum from_mont(const Bignum& x) const { return mul(x, Bignum{1}); }

  Bignum pow(const Bignum& base, const Bignum& exp) const {
    if (exp.is_zero()) return Bignum{1} % n_;
    Bignum result = to_mont(Bignum{1});
    Bignum b = to_mont(base);
    const std::size_t bits = exp.bit_length();
    for (std::size_t i = bits; i-- > 0;) {
      result = mul(result, result);
      if (exp.bit(i)) result = mul(result, b);
    }
    return from_mont(result);
  }

 private:
  Bignum n_;
  Bignum rr_;
  std::uint32_t n0_inv_ = 0;
  std::size_t k_ = 0;
};

inline const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    constexpr std::uint32_t kLimit = 8192;
    std::vector<bool> sieve(kLimit, true);
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (std::uint32_t j = i * 2; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }();
  return primes;
}

inline bool mr_round(const Montgomery& mont, const Bignum& n, const Bignum& n_minus_1,
                     const Bignum& d, std::size_t r, const Bignum& base) {
  Bignum x = mont.pow(base, d);
  if (x == Bignum{1} || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return true;
    if (x == Bignum{1}) return false;
  }
  return false;
}

inline bool Bignum::is_probable_prime(const Bignum& n, int rounds, Rng& rng) {
  if (n < Bignum{2}) return false;
  for (std::uint32_t p : small_primes()) {
    if (n == Bignum{p}) return true;
    if (n.mod_u32(p) == 0) return false;
  }
  const Bignum n_minus_1 = n - Bignum{1};
  Bignum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  Montgomery mont(n);
  if (!mr_round(mont, n, n_minus_1, d, r, Bignum{2})) return false;
  for (int i = 0; i < rounds; ++i) {
    Bignum base = random_below(rng, n - Bignum{3}) + Bignum{2};
    if (!mr_round(mont, n, n_minus_1, d, r, base)) return false;
  }
  return true;
}

inline Bignum Bignum::generate_prime(Rng& rng, std::size_t bits, int mr_rounds) {
  if (bits < 16) throw std::invalid_argument("prime too small");
  for (;;) {
    Bignum candidate = random_bits(rng, bits);
    candidate.set_bit(bits - 1);
    candidate.set_bit(bits - 2);
    candidate.set_bit(0);
    bool composite = false;
    for (std::uint32_t p : small_primes()) {
      if (candidate.mod_u32(p) == 0) {
        composite = true;
        break;
      }
    }
    if (composite) continue;
    if (is_probable_prime(candidate, mr_rounds, rng)) return candidate;
  }
}

/// The old rsa_generate p/q loop (public parts only — enough to time
/// keygen and to compare moduli against the new path).
struct KeyPublic {
  Bignum n;
  Bignum p, q;
};

inline KeyPublic generate_key(Rng& rng, std::size_t bits, int mr_rounds = 12) {
  for (;;) {
    Bignum p = Bignum::generate_prime(rng, bits / 2, mr_rounds);
    Bignum q = Bignum::generate_prime(rng, bits / 2, mr_rounds);
    if (p == q) continue;
    if (p < q) std::swap(p, q);
    if ((p - Bignum{1}).mod_u32(65537) == 0 || (q - Bignum{1}).mod_u32(65537) == 0) continue;
    const Bignum n = p * q;
    if (n.bit_length() != bits) continue;
    return {n, p, q};
  }
}

/// Batch GCD exactly as the old crypto/batch_gcd.cpp implemented it: the
/// product tree re-squares every node inside the remainder descent with a
/// general multiply, and every reduction is a full Knuth-D divmod.
inline std::vector<Bignum> batch_gcd(const std::vector<Bignum>& moduli) {
  std::vector<Bignum> shared_factor(moduli.size());
  if (moduli.size() < 2) return shared_factor;

  std::vector<std::vector<Bignum>> levels;
  levels.push_back(moduli);
  while (levels.back().size() > 1) {
    const auto& prev = levels.back();
    std::vector<Bignum> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) next.push_back(prev[i] * prev[i + 1]);
    if (prev.size() % 2) next.push_back(prev.back());
    levels.push_back(std::move(next));
  }

  std::vector<Bignum> rems = {levels.back()[0]};
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const auto& nodes = levels[level];
    std::vector<Bignum> next(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Bignum& parent_rem = rems[i / 2];
      next[i] = parent_rem % (nodes[i] * nodes[i]);
    }
    rems = std::move(next);
  }

  for (std::size_t i = 0; i < moduli.size(); ++i) {
    if (moduli[i].is_zero()) continue;
    const Bignum z = rems[i] / moduli[i];
    const Bignum g = Bignum::gcd(z, moduli[i]);
    if (g > Bignum{1}) shared_factor[i] = g;
  }
  return shared_factor;
}

}  // namespace opcua_study::legacy32
