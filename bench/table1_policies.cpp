// Table 1: OPC UA security policies — ciphers, key lengths, deprecation.
// Regenerated from the stack's policy registry (the same table drives the
// secure-channel crypto and all conformance classification).
#include <cstdio>

#include "opcua/secpolicy.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  TextTable table;
  table.set_header({"Policy", "Sig. Hash", "Cert. Hash", "Key Len. [bit]", "A", "Status"});
  for (const auto policy : kAllPolicies) {
    const auto& info = policy_info(policy);
    std::string sig = "-", cert_hash = "-", keys = "-";
    if (policy != SecurityPolicy::None) {
      sig = info.asym_signature == AsymmetricSignature::pkcs1v15_sha1 ? "SHA1" : "SHA256";
      cert_hash = hash_name(info.min_cert_hash);
      if (info.max_cert_hash != info.min_cert_hash) {
        cert_hash += ", " + hash_name(info.max_cert_hash);
      }
      keys = "[" + std::to_string(info.min_key_bits) + "; " + std::to_string(info.max_key_bits) + "]";
    }
    table.add_row({std::string(info.name), sig, cert_hash, keys, std::string(info.short_name),
                   info.deprecated ? "deprecated (2017)" : (info.secure ? "recommended" : "none")});
  }
  std::puts("Table 1: OPC UA security policies (paper's registry, reproduced)\n");
  std::fputs(table.str().c_str(), stdout);

  std::vector<ComparisonRow> rows = {
      compare_num("policies total", 6, static_cast<double>(std::size(kAllPolicies)), 0),
      compare_num("deprecated policies (D1, D2)", 2,
                  static_cast<double>(policy_info(SecurityPolicy::Basic128Rsa15).deprecated +
                                      policy_info(SecurityPolicy::Basic256).deprecated),
                  0),
      compare_num("secure policies (S1-S3)", 3,
                  static_cast<double>(policy_info(SecurityPolicy::Aes128Sha256RsaOaep).secure +
                                      policy_info(SecurityPolicy::Basic256Sha256).secure +
                                      policy_info(SecurityPolicy::Aes256Sha256RsaPss).secure),
                  0),
      compare_num("D1 max key bits", 2048,
                  static_cast<double>(policy_info(SecurityPolicy::Basic128Rsa15).max_key_bits), 0),
      compare_num("S2 min key bits", 2048,
                  static_cast<double>(policy_info(SecurityPolicy::Basic256Sha256).min_key_bits), 0),
  };
  std::fputs(render_comparison("Table 1 vs paper", rows).c_str(), stdout);
  return 0;
}
