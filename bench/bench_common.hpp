// Shared campaign access for the bench binaries: run once, cache on disk.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "scanner/snapshot_io.hpp"
#include "study/study.hpp"

namespace opcua_study::bench {

inline constexpr std::uint64_t kStudySeed = 20200209;

inline std::string snapshot_cache_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_SNAPSHOT_CACHE")) return env;
  return ".opcua_study_snapshots.bin";
}

/// All eight weekly measurements (cached after the first bench runs them).
inline const std::vector<ScanSnapshot>& full_study() {
  static const std::vector<ScanSnapshot> snapshots = [] {
    const std::string path = snapshot_cache_path();
    if (std::getenv("OPCUA_STUDY_FRESH") == nullptr) {
      if (auto cached = load_snapshots(path, kStudySeed)) {
        std::fprintf(stderr, "[bench] loaded %zu cached snapshots from %s\n", cached->size(),
                     path.c_str());
        return std::move(*cached);
      }
    }
    std::fprintf(stderr,
                 "[bench] running the full eight-week campaign "
                 "(first run generates ~900 RSA keys; subsequent runs hit the caches)...\n");
    StudyConfig config;
    config.seed = kStudySeed;
    std::vector<ScanSnapshot> fresh = run_full_study(config);
    save_snapshots(path, kStudySeed, fresh);
    std::fprintf(stderr, "[bench] campaign cached to %s\n", path.c_str());
    return fresh;
  }();
  return snapshots;
}

/// The paper's headline measurement (2020-08-30).
inline const ScanSnapshot& final_snapshot() { return full_study().back(); }

}  // namespace opcua_study::bench
