// Shared campaign access for the bench binaries: run once, cache on disk,
// analyze as a stream.
//
// The figure/table benches no longer materialize the dataset: the first
// binary to run records the eight-week campaign into a chunked v5
// snapshot file (streaming one measurement at a time), and every bench
// derives its numbers from one StudyAnalysis computed by the shared
// src/analysis/ aggregator over that file — chunk by chunk, in bounded
// memory, exactly like the paper's figures were cut from the released
// dataset rather than from a live scan.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "analysis/analysis.hpp"
#include "scanner/snapshot_io.hpp"
#include "study/study.hpp"
#include "util/date.hpp"
#include "obs/log.hpp"

namespace opcua_study::bench {

inline constexpr std::uint64_t kStudySeed = 20200209;

inline std::string snapshot_cache_path() {
  if (const char* env = std::getenv("OPCUA_STUDY_SNAPSHOT_CACHE")) return env;
  return ".opcua_study_snapshots.bin";
}

/// Ensures the recorded campaign exists on disk and returns its path.
/// Accepts both the current chunked v5 cache and a pre-existing v4 one.
inline std::string ensure_snapshot_cache() {
  const std::string path = snapshot_cache_path();
  if (std::getenv("OPCUA_STUDY_FRESH") == nullptr) {
    try {
      const SnapshotReader probe(path, kStudySeed);
      obs::logf(obs::LogLevel::info, "[bench] using cached campaign %s (v%u, %zu measurements)",
                   path.c_str(), probe.version(), probe.snapshots().size());
      return path;
    } catch (const SnapshotError& e) {
      obs::logf(obs::LogLevel::info, "[bench] snapshot cache unusable (%s)", e.what());
    }
  }
  obs::logf(obs::LogLevel::info, "[bench] running the full eight-week campaign "
               "(first run generates ~900 RSA keys; subsequent runs hit the caches)...");
  StudyConfig config;
  config.seed = kStudySeed;
  SnapshotWriter writer(path, kStudySeed);
  // Self-describing campaign identity: the diff subsystem validates that
  // a follow-up campaign really postdates this base.
  writer.set_campaign("imc2020-study", days_from_civil({2020, 2, 9}));
  run_full_study_streamed(config, writer);
  obs::logf(obs::LogLevel::info, "[bench] campaign cached to %s", path.c_str());
  return path;
}

/// One streaming pass over the recorded dataset -> every figure/table.
inline StudyAnalysis run_analysis(AnalysisOptions options = {.threads = 0}) {
  return analyze_file(ensure_snapshot_cache(), kStudySeed, options);
}

}  // namespace opcua_study::bench
