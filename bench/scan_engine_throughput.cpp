// Scan-engine throughput: lock-step vs interleaved vs sharded campaigns.
//
// The paper's infrastructure keeps thousands of hosts in flight (zmap +
// zgrab2 workers) so a full sweep fits the 24 h ethics window despite 110 s
// average per-host time (§A.2). This bench measures the reproduction's
// equivalents on a synthetic population:
//  - lock-step:    max_in_flight = 1 — the old strictly sequential engine,
//  - interleaved:  max_in_flight = 256 on one Network / one core,
//  - sharded:      per-shard Networks on a worker-thread pool,
//  - mqtt-tls:     the MQTT backend alone through the protocol registry,
//  - mixed fleet:  both protocol families in one heterogeneous sweep.
// It reports hosts/sec, real wall-clock, simulated campaign time, and the
// speedup of the parallel engines — and verifies that all engines produce
// the same scan results (the interleaved snapshot must equal the lock-step
// one record for record, for the OPC UA-only and the mixed sweep alike; the
// sharded one up to its documented (ip, port) host ordering).
//
// Results are emitted to BENCH_scan.json for the CI bench-regression guard.
//
//   ./build/scan_engine_throughput [opcua_hosts] [dummy_hosts] [shards] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "report/json.hpp"

#include "population/deploy.hpp"
#include "report/report.hpp"
#include "scanner/campaign.hpp"
#include "scanner/protocol.hpp"
#include "study/sharded.hpp"
#include "study/study.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

using namespace opcua_study;

namespace {

constexpr std::uint64_t kSeed = 20200209;

PopulationPlan synthetic_plan(int hosts) {
  PopulationPlan plan;
  for (int i = 0; i < hosts; ++i) {
    HostPlan host;
    host.index = i;
    host.cohort = "throughput";
    host.manufacturer = i % 3 == 0 ? "Bachmann" : "other";
    host.application_uri = "urn:generic:opcua:tp-" + std::to_string(i);
    host.product_uri = "http://example.org/throughput";
    host.application_name = "throughput host " + std::to_string(i);
    host.asn = 64503 + static_cast<std::uint32_t>(i % 6);
    host.certificate.present = true;
    host.certificate.key_bits = 1024;
    host.certificate.not_before_days = days_from_civil({2019, 1, 1});
    switch (i % 4) {
      case 0:  // anonymous + traversal: the expensive hosts
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.outcome = PlannedOutcome::accessible;
        host.classification = PlannedClass::production;
        host.variable_count = 8;
        host.method_count = 2;
        host.writable_fraction = 0.25;
        break;
      case 1:  // secure channel probe with the scanner certificate
        host.modes = {MessageSecurityMode::None, MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::None, SecurityPolicy::Basic256Sha256};
        host.tokens = {UserTokenType::UserName};
        host.outcome = PlannedOutcome::auth_rejected;
        break;
      case 2:  // strict cert validation
        host.modes = {MessageSecurityMode::SignAndEncrypt};
        host.policies = {SecurityPolicy::Basic256Sha256};
        host.tokens = {UserTokenType::UserName};
        host.trust_all_client_certs = false;
        host.outcome = PlannedOutcome::channel_rejected;
        break;
      default:  // anonymous offered, sessions rejected
        host.modes = {MessageSecurityMode::None};
        host.policies = {SecurityPolicy::None};
        host.tokens = {UserTokenType::Anonymous};
        host.reject_all_sessions = true;
        host.outcome = PlannedOutcome::auth_rejected;
        break;
    }
    plan.hosts.push_back(std::move(host));
  }
  // A small discovery fleet (1 per 16 hosts) referencing off-port targets.
  const int base = hosts;
  for (int d = 0; d < hosts / 16; ++d) {
    HostPlan ds;
    ds.index = base + 2 * d;
    ds.cohort = "throughput";
    ds.discovery = true;
    ds.manufacturer = "OPC Foundation";
    ds.application_uri = "urn:opcfoundation:ua:lds:tp-" + std::to_string(d);
    ds.application_name = "throughput lds " + std::to_string(d);
    ds.asn = 64509;
    ds.certificate.present = false;
    ds.modes = {MessageSecurityMode::None};
    ds.policies = {SecurityPolicy::None};
    ds.tokens = {UserTokenType::Anonymous};
    plan.hosts.push_back(ds);

    HostPlan ref;
    ref.index = base + 2 * d + 1;
    ref.cohort = "throughput";
    ref.manufacturer = "other";
    ref.application_uri = "urn:generic:opcua:tp-ref-" + std::to_string(d);
    ref.application_name = "referenced host " + std::to_string(d);
    ref.asn = 64510;
    ref.port = 4841;
    ref.via_reference_only = true;
    ref.certificate.present = true;
    ref.certificate.key_bits = 1024;
    ref.certificate.not_before_days = days_from_civil({2019, 1, 1});
    ref.modes = {MessageSecurityMode::None};
    ref.policies = {SecurityPolicy::None};
    ref.tokens = {UserTokenType::Anonymous};
    ref.outcome = PlannedOutcome::accessible;
    ref.classification = PlannedClass::test;
    ref.variable_count = 4;
    ref.method_count = 1;
    plan.hosts.push_back(ref);
    plan.discovery_references.emplace_back(base + 2 * d, base + 2 * d + 1);
  }
  return plan;
}

struct EngineResult {
  ScanSnapshot snapshot;
  double real_seconds = 0;
  double simulated_seconds = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_scan.json";
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(std::atoi(argv[i]));
    }
  }
  const int opcua_hosts = positional.size() > 0 ? positional[0] : 120;
  const int dummy_hosts = positional.size() > 1 ? positional[1] : 600;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const int shards = positional.size() > 2 ? positional[2] : std::max(4, static_cast<int>(hardware));

  PopulationPlan plan = synthetic_plan(opcua_hosts);
  // An MQTT-over-TLS broker fleet alongside: invisible to the OPC UA-only
  // rows (the brokers sit on port 8883), scanned by the mqtt/mixed rows.
  const int mqtt_hosts = std::max(1, opcua_hosts / 2);
  add_mqtt_population(plan, kSeed, mqtt_hosts);

  obs::logf(obs::LogLevel::info, "[bench] scan engine throughput: %d OPC UA hosts, %d MQTT brokers, %d dummies, "
               "%d shards, %u cores",
               opcua_hosts, mqtt_hosts, dummy_hosts, shards, hardware);
  DeployConfig deploy_config;
  deploy_config.seed = kSeed;
  deploy_config.dummy_hosts = dummy_hosts;
  deploy_config.fast_keys = true;  // timing bench: certificate classes don't matter
  deploy_config.key_cache_path = "";
  Deployer deployer(plan, deploy_config);
  KeyFactory scanner_keys(kSeed, "");
  const ClientConfig scanner_identity = make_scanner_identity(kSeed, scanner_keys);

  auto run_single_network = [&](std::size_t max_in_flight,
                                const std::vector<ProtocolTarget>& protocols =
                                    std::vector<ProtocolTarget>{}) {
    EngineResult result;
    Network net;
    deployer.deploy_week(net, 7);
    CampaignConfig config;
    config.seed = kSeed;
    config.max_in_flight = max_in_flight;
    config.protocols = protocols;
    config.grabber.client = scanner_identity;
    Campaign campaign(config, net);
    const auto start = std::chrono::steady_clock::now();
    result.snapshot = campaign.run(7);
    result.real_seconds = seconds_since(start);
    result.simulated_seconds = static_cast<double>(net.clock().now_us()) / 1e6;
    return result;
  };
  const std::vector<ProtocolTarget> mqtt_only = {
      {ProtocolId::mqtt_tls, kMqttTlsDefaultPort}};
  const std::vector<ProtocolTarget> mixed_fleet = {
      {ProtocolId::opcua, 4840}, {ProtocolId::mqtt_tls, kMqttTlsDefaultPort}};

  obs::logf(obs::LogLevel::info, "[bench] lock-step engine (max_in_flight = 1)...");
  const EngineResult lock_step = run_single_network(1);
  obs::logf(obs::LogLevel::info, "[bench] interleaved engine (max_in_flight = 256)...");
  const EngineResult interleaved = run_single_network(256);

  obs::logf(obs::LogLevel::info, "[bench] mqtt-tls backend (max_in_flight = 256)...");
  const EngineResult mqtt = run_single_network(256, mqtt_only);
  obs::logf(obs::LogLevel::info, "[bench] mixed fleet lock-step (max_in_flight = 1)...");
  const EngineResult mixed_lock_step = run_single_network(1, mixed_fleet);
  obs::logf(obs::LogLevel::info, "[bench] mixed fleet interleaved (max_in_flight = 256)...");
  const EngineResult mixed = run_single_network(256, mixed_fleet);

  obs::logf(obs::LogLevel::info, "[bench] sharded engine (%d shards)...", shards);
  EngineResult sharded;
  {
    ShardedCampaignConfig config;
    config.campaign.seed = kSeed;
    config.campaign.grabber.client = scanner_identity;
    config.shards = shards;
    ShardedRunStats stats;
    const auto start = std::chrono::steady_clock::now();
    sharded.snapshot = run_sharded_campaign(deployer, 7, config, &stats);
    sharded.real_seconds = seconds_since(start);
    sharded.simulated_seconds = static_cast<double>(stats.max_simulated_us()) / 1e6;
  }

  // ---- telemetry overhead: the zero-cost-when-disabled claim, measured.
  // Two disabled baselines bound the run-to-run noise floor; the enabled
  // run pays the real instrument cost (relaxed atomics in the hot loops).
  const auto hosts_per_sec_of = [](const EngineResult& r) {
    return static_cast<double>(r.snapshot.hosts.size()) / std::max(r.real_seconds, 1e-9);
  };
  auto best_hps = [&](int reps) {
    double best = 0;
    for (int rep = 0; rep < reps; ++rep) {
      best = std::max(best, hosts_per_sec_of(run_single_network(256)));
    }
    return best;
  };
  obs::logf(obs::LogLevel::info, "[bench] telemetry overhead: disabled baselines...");
  const double disabled_a = best_hps(3);
  const double disabled_b = best_hps(3);
  obs::logf(obs::LogLevel::info, "[bench] telemetry overhead: metrics enabled...");
  obs::set_enabled(true);
  const double enabled_hps = best_hps(3);
  obs::set_enabled(false);
  obs::reset();
  const double best_disabled = std::max(disabled_a, disabled_b);
  const double obs_overhead_disabled =
      best_disabled / std::max(std::min(disabled_a, disabled_b), 1e-9);
  const double obs_overhead_enabled = best_disabled / std::max(enabled_hps, 1e-9);

  // ---- correctness: the engines must agree on what the Internet looks like.
  const bool interleaved_equal = interleaved.snapshot == lock_step.snapshot;
  auto sorted_hosts = [](const ScanSnapshot& snapshot) {
    std::vector<HostScanRecord> hosts = snapshot.hosts;
    std::sort(hosts.begin(), hosts.end(), [](const HostScanRecord& a, const HostScanRecord& b) {
      return std::make_pair(a.ip, a.port) < std::make_pair(b.ip, b.port);
    });
    return hosts;
  };
  const bool sharded_equal = sorted_hosts(sharded.snapshot) == sorted_hosts(lock_step.snapshot);
  const bool mixed_equal = mixed.snapshot == mixed_lock_step.snapshot;
  // The heterogeneous sweep must actually cover both protocol families.
  bool protocol_seen[static_cast<std::size_t>(kProtocolCount)] = {};
  for (const auto& host : mixed.snapshot.hosts) {
    protocol_seen[static_cast<std::size_t>(host.protocol)] = true;
  }
  int mixed_protocol_families = 0;
  for (const bool seen : protocol_seen) mixed_protocol_families += seen ? 1 : 0;

  const auto hosts_per_sec = [](const EngineResult& r) {
    return static_cast<double>(r.snapshot.hosts.size()) / std::max(r.real_seconds, 1e-9);
  };
  const double interleaved_speedup = lock_step.real_seconds / std::max(interleaved.real_seconds, 1e-9);
  const double sharded_speedup = lock_step.real_seconds / std::max(sharded.real_seconds, 1e-9);

  std::puts("Scan engine throughput (synthetic weekly sweep)\n");
  TextTable table;
  table.set_header({"engine", "hosts found", "real time", "hosts/sec", "simulated time", "speedup"});
  auto add = [&](const char* name, const EngineResult& r, double speedup) {
    table.add_row({name, fmt_int(static_cast<long>(r.snapshot.hosts.size())),
                   fmt_double(r.real_seconds, 2) + " s", fmt_double(hosts_per_sec(r), 1),
                   fmt_double(r.simulated_seconds / 3600.0, 2) + " h",
                   fmt_double(speedup, 2) + "x"});
  };
  add("lock-step (in-flight 1)", lock_step, 1.0);
  add("interleaved (in-flight 256)", interleaved, interleaved_speedup);
  add(("sharded (" + std::to_string(shards) + " shards, " + std::to_string(hardware) + " threads)").c_str(),
      sharded, sharded_speedup);
  add("mqtt-tls backend (in-flight 256)", mqtt, 1.0);
  add("mixed fleet lock-step (in-flight 1)", mixed_lock_step, 1.0);
  add("mixed fleet (in-flight 256)", mixed,
      mixed_lock_step.real_seconds / std::max(mixed.real_seconds, 1e-9));
  std::fputs(table.str().c_str(), stdout);

  std::vector<ComparisonRow> rows = {
      {"interleaved snapshot == lock-step (record for record)", "equal",
       interleaved_equal ? "equal" : "MISMATCH", interleaved_equal},
      {"sharded host records == lock-step (sorted)", "equal",
       sharded_equal ? "equal" : "MISMATCH", sharded_equal},
      {"simulated window compressed (interleaved vs lock-step)", "> 2x",
       fmt_double(lock_step.simulated_seconds / std::max(interleaved.simulated_seconds, 1e-9), 1) + "x",
       lock_step.simulated_seconds > 2 * interleaved.simulated_seconds},
      {"mixed-fleet snapshot == mixed lock-step (record for record)", "equal",
       mixed_equal ? "equal" : "MISMATCH", mixed_equal},
      {"mixed sweep covers both protocol families", "2",
       std::to_string(mixed_protocol_families), mixed_protocol_families == 2},
      {"telemetry overhead, disabled (run-to-run noise)", "<= 1.02x",
       fmt_double(obs_overhead_disabled, 3) + "x", obs_overhead_disabled <= 1.02},
      {"telemetry overhead, metrics enabled", "<= 1.10x",
       fmt_double(obs_overhead_enabled, 3) + "x", obs_overhead_enabled <= 1.10},
  };
  if (hardware >= 4) {
    rows.push_back({"sharded wall-clock speedup on >= 4 cores", ">= 2x",
                    fmt_double(sharded_speedup, 2) + "x", sharded_speedup >= 2.0});
  } else {
    std::printf("\n(only %u core%s available: the >= 2x sharded wall-clock criterion needs >= 4)\n",
                hardware, hardware == 1 ? "" : "s");
  }
  std::fputs(render_comparison("Scan engine vs sequential baseline", rows).c_str(), stdout);

  // ---- machine-readable trajectory --------------------------------------
  {
    const double window_compression =
        lock_step.simulated_seconds / std::max(interleaved.simulated_seconds, 1e-9);
    JsonWriter json;
    json.begin_object()
        .field("opcua_hosts", opcua_hosts)
        .field("mqtt_hosts", mqtt_hosts)
        .field("dummy_hosts", dummy_hosts)
        .field("shards", shards)
        .field("cores", static_cast<int>(hardware))
        .key("hosts_per_sec")
        .begin_object()
        .field("lock_step", hosts_per_sec(lock_step))
        .field("interleaved", hosts_per_sec(interleaved))
        .field("sharded", hosts_per_sec(sharded))
        .field("mqtt", hosts_per_sec(mqtt))
        .field("mixed", hosts_per_sec(mixed))
        .end_object()
        .field("interleaved_speedup", interleaved_speedup)
        .field("sharded_speedup", sharded_speedup)
        .field("simulated_window_compression", window_compression)
        .field("interleaved_equals_lock_step", interleaved_equal)
        .field("sharded_equals_lock_step", sharded_equal)
        .field("mixed_equals_lock_step", mixed_equal)
        .field("mixed_protocol_families", mixed_protocol_families)
        .field("obs_overhead_disabled", obs_overhead_disabled)
        .field("obs_overhead_enabled", obs_overhead_enabled)
        .end_object();
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    obs::logf(obs::LogLevel::info, "[bench] wrote %s", json_path.c_str());
  }
  return (interleaved_equal && sharded_equal && mixed_equal && mixed_protocol_families == 2) ? 0
                                                                                            : 1;
}
