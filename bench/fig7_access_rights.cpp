// Figure 7: fraction of anonymously readable / writable nodes and
// executable functions across all publicly accessible hosts (1-CDF).
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const AccessRightsStats& stats = analysis.access_rights;

  std::puts("Figure 7: anonymous access rights on accessible hosts (reproduced)\n");
  std::puts("fraction of hosts (1-CDF) -> fraction of nodes accessible to them");
  TextTable table;
  table.set_header({"top hosts", "readable nodes", "writable nodes", "executable functions"});
  const auto read_curve = AccessRightsStats::survival_curve(stats.read_fractions);
  const auto write_curve = AccessRightsStats::survival_curve(stats.write_fractions);
  const auto exec_curve = AccessRightsStats::survival_curve(stats.exec_fractions);
  for (std::size_t i = 0; i < read_curve.size(); i += 2) {
    table.add_row({fmt_pct(read_curve[i].first, 0), fmt_pct(read_curve[i].second, 1),
                   fmt_pct(write_curve[i].second, 1), fmt_pct(exec_curve[i].second, 1)});
  }
  std::fputs(table.str().c_str(), stdout);

  const double read97 = AccessRightsStats::hosts_above(stats.read_fractions, 0.97);
  const double write10 = AccessRightsStats::hosts_above(stats.write_fractions, 0.10);
  const double exec86 = AccessRightsStats::hosts_above(stats.exec_fractions, 0.86);

  std::printf("\nhosts reading  > 97%% of nodes: %s %s\n", render_bar(read97, 1.0).c_str(),
              fmt_pct(read97).c_str());
  std::printf("hosts writing  > 10%% of nodes: %s %s\n", render_bar(write10, 1.0).c_str(),
              fmt_pct(write10).c_str());
  std::printf("hosts executing> 86%% of funcs: %s %s\n\n", render_bar(exec86, 1.0).c_str(),
              fmt_pct(exec86).c_str());

  std::vector<ComparisonRow> rows = {
      compare_num("accessible hosts traversed", 493,
                  static_cast<double>(stats.read_fractions.size()), 0),
      {"hosts able to read > 97% of nodes", "90%", fmt_pct(read97), std::abs(read97 - 0.90) < 0.025},
      {"hosts able to write > 10% of nodes", "33%", fmt_pct(write10),
       std::abs(write10 - 0.33) < 0.025},
      {"hosts able to execute > 86% of functions", "61%", fmt_pct(exec86),
       std::abs(exec86 - 0.61) < 0.025},
  };
  std::fputs(render_comparison("Figure 7 vs paper", rows).c_str(), stdout);
  return 0;
}
