// §5.5 "A Lack of Longitudinal Improvements": weekly deficiency stability,
// certificate renewals on static IPs, the cross-measurement certificate
// corpus and its SHA-1 NotBefore dates, and the growth of the reused-
// certificate fleet.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"
#include "util/date.hpp"

using namespace opcua_study;

int main() {
  const StudyAnalysis analysis = bench::run_analysis();
  const LongitudinalStats& stats = analysis.longitudinal;

  std::puts("Section 5.5: longitudinal analysis (reproduced)\n");
  TextTable table;
  table.set_header({"measurement", "servers", "deficient", "%", "reused-cert devices"});
  for (const auto& week : stats.weeks) {
    table.add_row({format_date(civil_from_days(week.date_days)), fmt_int(week.servers),
                   fmt_int(week.deficient), fmt_double(week.deficient_pct, 2),
                   fmt_int(week.reuse_devices)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf("\ndeficiency: avg %.2f%%  std %.2f  min %.2f%%  max %.2f%%\n",
              stats.deficiency_avg, stats.deficiency_std, stats.deficiency_min,
              stats.deficiency_max);
  std::printf("certificates collected over all measurements: %zu distinct\n",
              stats.total_distinct_certificates);
  std::printf("SHA-1 certificates with NotBefore >= 2017: %zu, >= 2019: %zu\n",
              stats.sha1_after_2017, stats.sha1_after_2019);
  std::printf("renewals on static IPs: %zu (software update in %d, SHA-1 replaced in %d, "
              "downgraded in %d)\n\n",
              stats.renewals.size(), stats.renewals_with_software_update, stats.sha1_upgrades,
              stats.downgrades);

  const int reuse_first = stats.weeks.front().reuse_devices;
  const int reuse_last = stats.weeks.back().reuse_devices;
  const int reuse_prev = stats.weeks[stats.weeks.size() - 2].reuse_devices;
  std::vector<ComparisonRow> rows = {
      {"avg weekly deficiency", "92%", fmt_double(stats.deficiency_avg, 2) + "%",
       std::abs(stats.deficiency_avg - 92.0) < 0.5},
      {"weekly deficiency std", "0.8", fmt_double(stats.deficiency_std, 2),
       std::abs(stats.deficiency_std - 0.8) < 0.4},
      {"weekly deficiency min", "91%", fmt_double(stats.deficiency_min, 2) + "%",
       stats.deficiency_min >= 91.0 && stats.deficiency_min < 92.0},
      {"weekly deficiency max", "94%", fmt_double(stats.deficiency_max, 2) + "%",
       stats.deficiency_max <= 94.0 && stats.deficiency_max > 93.0},
      compare_num("distinct certificates over the study", 4296,
                  static_cast<double>(stats.total_distinct_certificates), 0),
      compare_num("SHA-1 certs created after 2017 deprecation", 2174,
                  static_cast<double>(stats.sha1_after_2017), 0),
      compare_num("SHA-1 certs created since 2019", 1923,
                  static_cast<double>(stats.sha1_after_2019), 0),
      compare_num("certificate renewals on static IPs", 84,
                  static_cast<double>(stats.renewals.size()), 0),
      compare_num("renewals with software update", 9, stats.renewals_with_software_update, 0),
      compare_num("renewals replacing SHA-1", 7, stats.sha1_upgrades, 0),
      compare_num("renewals downgrading to SHA-1", 1, stats.downgrades, 0),
      compare_num("reused-cert devices first measurement", 263, reuse_first, 0),
      compare_num("reused-cert devices last measurement", 400, reuse_last, 0),
      compare_num("reuse growth in final week (+3)", 3, reuse_last - reuse_prev, 0),
  };
  std::fputs(render_comparison("Section 5.5 vs paper", rows).c_str(), stdout);
  return 0;
}
